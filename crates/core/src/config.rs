//! System configuration: the chip of Table 5.1 plus the technology and
//! refresh-policy choices of Tables 5.2 and 5.4.

use std::fmt;
use std::sync::Arc;

use refrint_coherence::protocol::CoherenceProtocol;
use refrint_edram::model::PolicyFactory;
use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
use refrint_edram::retention::RetentionConfig;
use refrint_edram::variation::RetentionProfile;
use refrint_energy::tech::{CellTech, TechnologyParams};
use refrint_engine::time::Cycle;
use refrint_mem::config::CacheLevelConfig;
use refrint_noc::latency::LinkParams;
use refrint_noc::topology::Torus;
use refrint_workloads::model::WorkloadModel;

use crate::cpu::CoreTimingModel;
use crate::error::{ConfigError, RefrintError};

/// Complete configuration of one simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores / tiles (the paper uses 16).
    pub cores: usize,
    /// Number of shared L3 banks (the paper uses 16, one per tile).
    pub l3_banks: usize,
    /// Private instruction L1 configuration.
    pub il1: CacheLevelConfig,
    /// Private data L1 configuration.
    pub dl1: CacheLevelConfig,
    /// Private L2 configuration.
    pub l2: CacheLevelConfig,
    /// One shared L3 bank's configuration.
    pub l3_bank: CacheLevelConfig,
    /// The on-chip interconnect topology.
    pub torus: Torus,
    /// Link/router latency parameters.
    pub link: LinkParams,
    /// Core timing model.
    pub core: CoreTimingModel,
    /// The memory cell technology of the on-chip caches.
    pub cells: CellTech,
    /// eDRAM retention configuration (ignored for SRAM).
    pub retention: RetentionConfig,
    /// Per-bank retention variation profile (eDRAM only): how each L3
    /// bank's actual retention is drawn around the nominal `retention`.
    /// The default [`RetentionProfile::Uniform`] assigns nominal retention
    /// everywhere and samples no randomness.
    pub retention_profile: RetentionProfile,
    /// The coherence protocol the chip runs (default MESI).
    pub protocol: CoherenceProtocol,
    /// Refresh policy applied to the L3 (L1/L2 use the same time policy with
    /// the `Valid` data policy, per Section 6.2). Ignored for SRAM.
    pub policy: RefreshPolicy,
    /// Custom refresh-policy model for the L3, overriding `policy` when set.
    /// The private caches keep the descriptor-derived `Valid` policy (the
    /// paper's Section 6.2 setup); the custom model governs the shared L3,
    /// which is where the policy sweep acts. Ignored for SRAM.
    pub l3_policy_model: Option<Arc<dyn PolicyFactory>>,
    /// Technology/energy parameters.
    pub tech: TechnologyParams,
    /// Seed for the deterministic workload streams.
    pub seed: u64,
    /// Override of the workload's references per thread (`None` keeps the
    /// application preset's default). Used to scale runs up or down.
    pub refs_per_thread: Option<u64>,
}

impl SystemConfig {
    /// The full-SRAM baseline system of the paper (no refresh).
    #[must_use]
    pub fn sram_baseline() -> Self {
        SystemConfig {
            cores: 16,
            l3_banks: 16,
            il1: CacheLevelConfig::paper_il1(),
            dl1: CacheLevelConfig::paper_dl1(),
            l2: CacheLevelConfig::paper_l2(),
            l3_bank: CacheLevelConfig::paper_l3_bank(),
            torus: Torus::paper_4x4(),
            link: LinkParams::paper_default(),
            core: CoreTimingModel::paper_default(),
            cells: CellTech::Sram,
            retention: RetentionConfig::microseconds_50(),
            retention_profile: RetentionProfile::Uniform,
            protocol: CoherenceProtocol::Mesi,
            policy: RefreshPolicy::edram_baseline(),
            l3_policy_model: None,
            tech: TechnologyParams::paper_default(),
            seed: 0xBEEF,
            refs_per_thread: None,
        }
    }

    /// The naive full-eDRAM system: `Periodic All` at 50 µs.
    #[must_use]
    pub fn edram_baseline() -> Self {
        SystemConfig {
            cells: CellTech::Edram,
            policy: RefreshPolicy::edram_baseline(),
            ..Self::sram_baseline()
        }
    }

    /// The paper's recommended configuration: `Refrint WB(32,32)` at 50 µs.
    #[must_use]
    pub fn edram_recommended() -> Self {
        SystemConfig {
            cells: CellTech::Edram,
            policy: RefreshPolicy::recommended(),
            ..Self::sram_baseline()
        }
    }

    /// Sets the refresh policy (eDRAM only). Clears any custom L3 model.
    #[must_use]
    pub fn with_policy(mut self, policy: RefreshPolicy) -> Self {
        self.policy = policy;
        self.l3_policy_model = None;
        self
    }

    /// Installs a custom refresh-policy model for the L3 (eDRAM only). The
    /// private caches keep the `policy` descriptor's time policy with the
    /// `Valid` data policy, as in the paper's evaluation.
    #[must_use]
    pub fn with_policy_model(mut self, factory: Arc<dyn PolicyFactory>) -> Self {
        self.l3_policy_model = Some(factory);
        self
    }

    /// The factory that builds the L3's refresh-policy model: the custom
    /// model if one is installed, otherwise the `policy` descriptor.
    #[must_use]
    pub fn l3_policy_factory(&self) -> &dyn PolicyFactory {
        match &self.l3_policy_model {
            Some(factory) => factory.as_ref(),
            None => &self.policy,
        }
    }

    /// Sets the retention configuration (eDRAM only).
    #[must_use]
    pub fn with_retention(mut self, retention: RetentionConfig) -> Self {
        self.retention = retention;
        self
    }

    /// Sets the per-bank retention variation profile (eDRAM only).
    #[must_use]
    pub fn with_retention_profile(mut self, profile: RetentionProfile) -> Self {
        self.retention_profile = profile;
        self
    }

    /// Sets the coherence protocol.
    #[must_use]
    pub fn with_protocol(mut self, protocol: CoherenceProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// The actual retention configuration of each L3 bank: the nominal
    /// retention scaled by the profile's sampled per-bank factor, floored
    /// so the sentry margin (one cycle per line) always fits. With the
    /// default uniform profile this is exactly the nominal retention in
    /// every bank — no sampling, no rounding.
    #[must_use]
    pub fn bank_retentions(&self) -> Vec<RetentionConfig> {
        if !self.cells.needs_refresh() || self.retention_profile.is_default() {
            return vec![self.retention; self.l3_banks];
        }
        let factors = self
            .retention_profile
            .factors_per_mille(self.seed, self.l3_banks);
        let base = self.retention.line_retention_cycles().raw();
        let freq = self.retention.frequency();
        let floor = self.l3_bank.geometry.num_lines() + 1;
        factors
            .into_iter()
            .map(|f| {
                let cycles = (base.saturating_mul(f) / 1000).max(floor);
                RetentionConfig::new(freq.duration_of(Cycle::new(cycles)), freq)
                    .expect("per-bank retention is at least the sentry margin")
            })
            .collect()
    }

    /// Sets the cell technology.
    #[must_use]
    pub fn with_cells(mut self, cells: CellTech) -> Self {
        self.cells = cells;
        self
    }

    /// Sets the workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of references each workload thread issues
    /// (scales simulated time; smaller is faster).
    #[must_use]
    pub fn with_scale(mut self, refs_per_thread: u64) -> Self {
        self.refs_per_thread = Some(refs_per_thread);
        self
    }

    /// Shrinks the chip (cores, banks and thread count) for fast unit tests.
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self.l3_banks = cores;
        self
    }

    /// Validates the configuration, reporting the violated constraint as a
    /// typed [`ConfigError`]. This is the single home of every
    /// configuration rule; [`SystemConfig::validate`] and the builder's
    /// `BuildError` mapping are derived from it.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`].
    pub fn validate_typed(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if self.cores > self.torus.num_nodes() {
            return Err(ConfigError::TooManyCores {
                cores: self.cores,
                torus_nodes: self.torus.num_nodes(),
            });
        }
        if self.l3_banks != self.cores {
            return Err(ConfigError::BankCoreMismatch {
                l3_banks: self.l3_banks,
                cores: self.cores,
            });
        }
        let line = self.dl1.geometry.line_size();
        if self.l2.geometry.line_size() != line
            || self.l3_bank.geometry.line_size() != line
            || self.il1.geometry.line_size() != line
        {
            return Err(ConfigError::LineSizeMismatch);
        }
        if self.cells.needs_refresh() {
            let margin = self.l3_bank.geometry.num_lines();
            if margin >= self.retention.line_retention_cycles().raw() {
                return Err(ConfigError::RetentionTooShort {
                    retention_cycles: self.retention.line_retention_cycles().raw(),
                    sentry_margin: margin,
                });
            }
        } else if self.l3_policy_model.is_some() {
            return Err(ConfigError::SramWithPolicyModel);
        } else if !self.retention_profile.is_default() {
            return Err(ConfigError::SramWithRetentionProfile);
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RefrintError::InvalidConfig`] if the core count does not
    /// match the torus, the bank count differs from the core count, or the
    /// line sizes disagree across levels.
    pub fn validate(&self) -> Result<(), RefrintError> {
        self.validate_typed().map_err(RefrintError::from)
    }

    /// A short human-readable description of the technology/policy point,
    /// e.g. `SRAM`, `eDRAM 50us P.all`, `eDRAM 100us R.WB(32,32)`. The
    /// coherence protocol and retention profile are appended only when they
    /// differ from the defaults, so every pre-existing label (and anything
    /// keyed on it, such as the serve cache) is unchanged for default runs.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = match self.cells {
            CellTech::Sram => "SRAM".to_owned(),
            CellTech::Edram => format!(
                "eDRAM {}us {}",
                self.retention.retention().as_micros(),
                self.l3_policy_factory().label()
            ),
        };
        if !self.protocol.is_default() {
            label.push_str(&format!(" {}", self.protocol.label()));
        }
        if !self.retention_profile.is_default() {
            label.push_str(&format!(" {}", self.retention_profile.label()));
        }
        label
    }

    /// The workload model as a system with this configuration actually runs
    /// it: thread count pinned to the core count, length scaled by the
    /// `refs_per_thread` override. Trace capture writes exactly these
    /// streams, which is what makes replay bit-identical.
    #[must_use]
    pub fn adjusted_model(&self, model: &WorkloadModel) -> WorkloadModel {
        let mut model = model.clone().with_threads(self.cores);
        if let Some(refs) = self.refs_per_thread {
            model = model.with_refs_per_thread(refs);
        }
        model
    }

    /// The time policy actually applied to the private L1/L2 caches: the
    /// configured time policy with the `Valid` data policy (Section 6.2).
    #[must_use]
    pub fn private_cache_policy(&self) -> RefreshPolicy {
        RefreshPolicy::new(self.policy.time, DataPolicy::Valid)
    }

    /// Whether the configured time policy is Periodic (used to pick the
    /// blocking model).
    #[must_use]
    pub fn is_periodic(&self) -> bool {
        self.policy.time == TimePolicy::Periodic
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::edram_recommended()
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Chip            : {} cores, {} L3 banks, {}",
            self.cores, self.l3_banks, self.torus
        )?;
        writeln!(
            f,
            "IL1             : {} ({} ns)",
            self.il1.geometry, self.il1.access_latency
        )?;
        writeln!(
            f,
            "DL1             : {} ({} , WT)",
            self.dl1.geometry, self.dl1.access_latency
        )?;
        writeln!(
            f,
            "L2              : {} ({} , WB)",
            self.l2.geometry, self.l2.access_latency
        )?;
        writeln!(
            f,
            "L3 bank         : {} ({} , WB, shared)",
            self.l3_bank.geometry, self.l3_bank.access_latency
        )?;
        writeln!(f, "Cells           : {}", self.cells)?;
        if !self.protocol.is_default() {
            writeln!(f, "Coherence       : {}", self.protocol)?;
        }
        if self.cells.needs_refresh() {
            writeln!(f, "Retention       : {}", self.retention)?;
            if !self.retention_profile.is_default() {
                writeln!(f, "Retention var.  : {}", self.retention_profile)?;
            }
            writeln!(f, "Refresh policy  : {}", self.l3_policy_factory().label())?;
        }
        write!(f, "Seed            : {:#x}", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_validate() {
        SystemConfig::sram_baseline().validate().unwrap();
        SystemConfig::edram_baseline().validate().unwrap();
        SystemConfig::edram_recommended().validate().unwrap();
    }

    #[test]
    fn labels_identify_the_point() {
        assert_eq!(SystemConfig::sram_baseline().label(), "SRAM");
        assert_eq!(SystemConfig::edram_baseline().label(), "eDRAM 50us P.all");
        assert_eq!(
            SystemConfig::edram_recommended()
                .with_retention(RetentionConfig::microseconds_200())
                .label(),
            "eDRAM 200us R.WB(32,32)"
        );
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::edram_recommended()
            .with_policy(RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Dirty))
            .with_retention(RetentionConfig::microseconds_100())
            .with_seed(7)
            .with_scale(123)
            .with_cores(4);
        assert_eq!(c.cores, 4);
        assert_eq!(c.l3_banks, 4);
        assert_eq!(c.seed, 7);
        assert_eq!(c.refs_per_thread, Some(123));
        assert!(c.is_periodic());
        assert_eq!(c.private_cache_policy().data, DataPolicy::Valid);
        c.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SystemConfig::sram_baseline();
        c.cores = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::sram_baseline();
        c.cores = 17;
        c.l3_banks = 17;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::sram_baseline();
        c.l3_banks = 8;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::edram_baseline();
        c.retention = RetentionConfig::new(
            refrint_engine::time::SimDuration::from_micros(10),
            refrint_engine::time::Freq::gigahertz(1),
        )
        .unwrap();
        // 10 us = 10_000 cycles < 16K-line sentry margin: invalid.
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_includes_key_fields() {
        let text = SystemConfig::edram_recommended().to_string();
        assert!(text.contains("16 cores"));
        assert!(text.contains("eDRAM"));
        assert!(text.contains("R.WB(32,32)"));
        let text = SystemConfig::sram_baseline().to_string();
        assert!(!text.contains("Refresh policy"));
    }

    #[test]
    fn default_is_recommended() {
        assert_eq!(SystemConfig::default().label(), "eDRAM 50us R.WB(32,32)");
    }

    #[test]
    fn non_default_axes_appear_in_label() {
        let c = SystemConfig::edram_recommended()
            .with_protocol(CoherenceProtocol::Dragon)
            .with_retention_profile(RetentionProfile::Bimodal {
                weak_pct: 25,
                weak_retention_pct: 60,
            });
        assert_eq!(c.label(), "eDRAM 50us R.WB(32,32) dragon bimodal(25,60)");
        c.validate().unwrap();
        let sram = SystemConfig::sram_baseline().with_protocol(CoherenceProtocol::Dragon);
        assert_eq!(sram.label(), "SRAM dragon");
        sram.validate().unwrap();
    }

    #[test]
    fn retention_profile_requires_edram() {
        let c = SystemConfig::sram_baseline()
            .with_retention_profile(RetentionProfile::Normal { sigma_pct: 10 });
        assert_eq!(
            c.validate_typed(),
            Err(ConfigError::SramWithRetentionProfile)
        );
    }

    #[test]
    fn uniform_bank_retentions_are_nominal() {
        let c = SystemConfig::edram_recommended();
        let banks = c.bank_retentions();
        assert_eq!(banks, vec![c.retention; 16]);
    }

    #[test]
    fn varied_bank_retentions_respect_sentry_floor() {
        let c =
            SystemConfig::edram_recommended().with_retention_profile(RetentionProfile::Bimodal {
                weak_pct: 100,
                // 10% of 50 us = 5000 cycles, below the 16K-line margin:
                // the floor must kick in.
                weak_retention_pct: 10,
            });
        let floor = c.l3_bank.geometry.num_lines() + 1;
        for r in c.bank_retentions() {
            assert_eq!(r.line_retention_cycles().raw(), floor);
        }
        // And the sampled assignment is a pure function of the seed.
        let again = c.clone().bank_retentions();
        assert_eq!(c.bank_retentions(), again);
        let other_seed = c.with_seed(999).bank_retentions();
        assert_eq!(other_seed.len(), 16);
    }
}
