//! The paper's parameter sweep (Table 5.4): 3 retention times × 2 time
//! policies × 7 data policies, plus the full-SRAM baseline, over the 11
//! applications of Table 5.3.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use refrint_coherence::protocol::CoherenceProtocol;
use refrint_edram::model::PolicyFactory;
use refrint_edram::policy::RefreshPolicy;
use refrint_edram::retention::RetentionConfig;
use refrint_edram::variation::RetentionProfile;
use refrint_trace::TraceFile;
use refrint_workloads::apps::AppPreset;
use refrint_workloads::classify::AppClass;

use crate::error::RefrintError;
use crate::report::SimReport;

/// A recorded trace included in a sweep: every `(retention × policy)` point
/// (plus the SRAM baseline) replays it, exactly like an application preset.
/// Reports are keyed by `name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// The key the trace's reports are filed under.
    pub name: String,
    /// Path of the trace file (binary or text).
    pub path: PathBuf,
}

impl TraceSpec {
    /// Builds a spec keyed by an explicit name.
    #[must_use]
    pub fn named(name: impl Into<String>, path: impl Into<PathBuf>) -> Self {
        TraceSpec {
            name: name.into(),
            path: path.into(),
        }
    }

    /// Builds a spec keyed by the workload name in the trace's header.
    ///
    /// # Errors
    ///
    /// [`RefrintError::Trace`] if the file cannot be opened or parsed.
    pub fn from_path(path: impl Into<PathBuf>) -> Result<Self, RefrintError> {
        let path = path.into();
        let trace = TraceFile::open(&path).map_err(|e| RefrintError::Trace {
            reason: format!("{}: {e}", path.display()),
        })?;
        Ok(TraceSpec {
            name: trace.meta().workload.clone(),
            path,
        })
    }
}

impl fmt::Display for TraceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.path.display())
    }
}

/// One eDRAM configuration point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Retention time in microseconds (50, 100 or 200 in the paper).
    pub retention_us: u64,
    /// The refresh policy (time × data).
    pub policy: RefreshPolicy,
}

impl SweepPoint {
    /// The figure label for this point, e.g. `R.WB(32,32)`.
    #[must_use]
    pub fn label(&self) -> String {
        self.policy.label()
    }
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} us / {}", self.retention_us, self.policy)
    }
}

/// Configuration of a sweep run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Applications to run (defaults to all 11 of Table 5.3).
    pub apps: Vec<AppPreset>,
    /// Retention times to sweep, in microseconds (defaults to 50/100/200).
    pub retentions_us: Vec<u64>,
    /// Policies to sweep (defaults to the 14 combinations of Table 5.4).
    pub policies: Vec<RefreshPolicy>,
    /// References per thread per run (scales simulated time).
    pub refs_per_thread: u64,
    /// Workload seed.
    pub seed: u64,
    /// Number of cores (16 in the paper; smaller values speed up testing).
    pub cores: usize,
    /// Custom refresh-policy models swept alongside `policies` at every
    /// retention point (their reports are keyed by their labels).
    pub models: Vec<Arc<dyn PolicyFactory>>,
    /// Recorded traces swept alongside `apps` at every configuration point.
    /// Each trace's thread count must match `cores`.
    pub traces: Vec<TraceSpec>,
    /// Coherence protocols to sweep (defaults to `[Mesi]`). Every workload
    /// runs its SRAM baseline and every eDRAM point once per protocol;
    /// non-default protocols suffix the report keys (e.g. `lu dragon`,
    /// `R.WB(32,32) dragon`).
    pub protocols: Vec<CoherenceProtocol>,
    /// Per-bank retention-variation profiles to sweep (defaults to
    /// `[Uniform]`). Profiles apply to eDRAM points only — the SRAM
    /// baseline never decays — and non-default profiles suffix the policy
    /// key (e.g. `R.WB(32,32) bimodal(25,60)`).
    pub retention_profiles: Vec<RetentionProfile>,
}

impl ExperimentConfig {
    /// The paper's full sweep at a moderate default scale.
    #[must_use]
    pub fn paper_full() -> Self {
        ExperimentConfig {
            apps: AppPreset::ALL.to_vec(),
            retentions_us: vec![50, 100, 200],
            policies: RefreshPolicy::paper_sweep(),
            refs_per_thread: 60_000,
            seed: 0xBEEF,
            cores: 16,
            models: Vec::new(),
            traces: Vec::new(),
            protocols: vec![CoherenceProtocol::Mesi],
            retention_profiles: vec![RetentionProfile::Uniform],
        }
    }

    /// A reduced sweep (three representative applications, the 50 µs
    /// retention point) for quick runs and CI.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            apps: vec![AppPreset::Fft, AppPreset::Lu, AppPreset::Blackscholes],
            retentions_us: vec![50],
            policies: RefreshPolicy::paper_sweep(),
            refs_per_thread: 8_000,
            seed: 0xBEEF,
            cores: 16,
            models: Vec::new(),
            traces: Vec::new(),
            protocols: vec![CoherenceProtocol::Mesi],
            retention_profiles: vec![RetentionProfile::Uniform],
        }
    }

    /// Scales the run length.
    #[must_use]
    pub fn with_refs_per_thread(mut self, refs: u64) -> Self {
        self.refs_per_thread = refs;
        self
    }

    /// Restricts the applications.
    #[must_use]
    pub fn with_apps(mut self, apps: Vec<AppPreset>) -> Self {
        self.apps = apps;
        self
    }

    /// Adds a custom refresh-policy model to the sweep.
    #[must_use]
    pub fn with_model(mut self, factory: Arc<dyn PolicyFactory>) -> Self {
        self.models.push(factory);
        self
    }

    /// Adds a recorded trace to the sweep.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.traces.push(trace);
        self
    }

    /// Replaces the coherence-protocol axis.
    #[must_use]
    pub fn with_protocols(mut self, protocols: Vec<CoherenceProtocol>) -> Self {
        self.protocols = protocols;
        self
    }

    /// Replaces the retention-variation axis.
    #[must_use]
    pub fn with_retention_profiles(mut self, profiles: Vec<RetentionProfile>) -> Self {
        self.retention_profiles = profiles;
        self
    }

    /// Total number of (workload × configuration) simulations the sweep
    /// will run, including the SRAM baselines. Applications and traces are
    /// both workloads.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        let protocols = self.protocols.len().max(1);
        let profiles = self.retention_profiles.len().max(1);
        (self.apps.len() + self.traces.len())
            * protocols
            * (1 + self.retentions_us.len() * (self.policies.len() + self.models.len()) * profiles)
    }

    pub(crate) fn retention(us: u64) -> Result<RetentionConfig, RefrintError> {
        RetentionConfig::from_microseconds(us).map_err(|e| RefrintError::InvalidConfig {
            reason: e.to_string(),
        })
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper_full()
    }
}

/// The results of a sweep: one SRAM baseline report per application plus one
/// eDRAM report per (application, retention, policy).
#[derive(Debug, Clone, Default)]
pub struct SweepResults {
    /// SRAM baseline reports keyed by application.
    pub sram: BTreeMap<String, SimReport>,
    /// eDRAM reports keyed by `(application, retention_us, policy label)`.
    pub edram: BTreeMap<(String, u64, String), SimReport>,
    /// The applications that were run, in order.
    pub apps: Vec<AppPreset>,
    /// The retention points that were swept.
    pub retentions_us: Vec<u64>,
    /// The policies that were swept, in figure order.
    pub policies: Vec<RefreshPolicy>,
    /// Labels of the custom policy models that were swept alongside the
    /// descriptor policies.
    pub custom_labels: Vec<String>,
    /// The traces that were swept alongside the applications.
    pub traces: Vec<TraceSpec>,
}

impl SweepResults {
    /// The SRAM baseline report for `app`.
    #[must_use]
    pub fn sram_report(&self, app: AppPreset) -> Option<&SimReport> {
        self.sram_report_named(app.name())
    }

    /// The SRAM baseline report for any workload key — application names
    /// and trace names share one namespace.
    #[must_use]
    pub fn sram_report_named(&self, workload: &str) -> Option<&SimReport> {
        self.sram.get(workload)
    }

    /// The eDRAM report for `(workload key, retention, policy label)` —
    /// reaches traces and custom policy models as well as presets.
    #[must_use]
    pub fn edram_report_named(
        &self,
        workload: &str,
        retention_us: u64,
        label: &str,
    ) -> Option<&SimReport> {
        self.edram
            .get(&(workload.to_owned(), retention_us, label.to_owned()))
    }

    /// The eDRAM report for `(app, retention, policy)`.
    #[must_use]
    pub fn edram_report(
        &self,
        app: AppPreset,
        retention_us: u64,
        policy: RefreshPolicy,
    ) -> Option<&SimReport> {
        self.edram_report_by_label(app, retention_us, &policy.label())
    }

    /// The eDRAM report for `(app, retention, label)` — the label form also
    /// reaches custom policy models swept via [`ExperimentConfig::models`].
    #[must_use]
    pub fn edram_report_by_label(
        &self,
        app: AppPreset,
        retention_us: u64,
        label: &str,
    ) -> Option<&SimReport> {
        self.edram_report_named(app.name(), retention_us, label)
    }

    /// The applications of `class` that were part of this sweep.
    #[must_use]
    pub fn apps_in_class(&self, class: AppClass) -> Vec<AppPreset> {
        self.apps
            .iter()
            .copied()
            .filter(|a| a.paper_class() == class)
            .collect()
    }

    /// Average, over the given applications, of `f(edram_report, sram_report)`.
    /// Applications missing either report are skipped.
    #[must_use]
    pub fn average_over<F>(
        &self,
        apps: &[AppPreset],
        retention_us: u64,
        policy: RefreshPolicy,
        f: F,
    ) -> Option<f64>
    where
        F: Fn(&SimReport, &SimReport) -> f64,
    {
        let values: Vec<f64> = apps
            .iter()
            .filter_map(|&app| {
                let edram = self.edram_report(app, retention_us, policy)?;
                let sram = self.sram_report(app)?;
                Some(f(edram, sram))
            })
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

/// Runs the sweep described by `config` on the sequential (single-worker)
/// path. Use [`crate::sweep::SweepRunner`] directly for the parallel runner
/// and progress streaming; for any worker count the merged results are
/// identical to this function's.
///
/// # Errors
///
/// Returns [`RefrintError::InvalidConfig`] if any derived system
/// configuration is invalid (e.g. a retention time shorter than the sentry
/// margin).
pub fn run_sweep(config: &ExperimentConfig) -> Result<SweepResults, RefrintError> {
    crate::sweep::SweepRunner::new(config.clone())
        .sequential()
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_edram::policy::{DataPolicy, TimePolicy};

    #[test]
    fn paper_sweep_has_473_runs() {
        // 11 apps x (1 SRAM + 3 retentions x 14 policies) = 11 x 43 = 473.
        let cfg = ExperimentConfig::paper_full();
        assert_eq!(cfg.total_runs(), 473);
        assert_eq!(cfg.policies.len(), 14);
    }

    #[test]
    fn tiny_sweep_runs_and_indexes() {
        let cfg = ExperimentConfig {
            apps: vec![AppPreset::Blackscholes, AppPreset::Fft],
            retentions_us: vec![50],
            policies: vec![
                RefreshPolicy::edram_baseline(),
                RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
            ],
            refs_per_thread: 1_500,
            seed: 3,
            cores: 4,
            models: Vec::new(),
            traces: Vec::new(),
            ..ExperimentConfig::default()
        };
        let results = run_sweep(&cfg).unwrap();
        assert_eq!(results.sram.len(), 2);
        assert_eq!(results.edram.len(), 4);
        assert!(results.sram_report(AppPreset::Fft).is_some());
        assert!(results.sram_report(AppPreset::Lu).is_none());
        assert!(results
            .edram_report(AppPreset::Fft, 50, RefreshPolicy::edram_baseline())
            .is_some());
        assert!(results
            .edram_report(AppPreset::Fft, 100, RefreshPolicy::edram_baseline())
            .is_none());

        // Averages over present apps exist, and are positive ratios.
        let avg = results
            .average_over(
                &[AppPreset::Fft, AppPreset::Blackscholes],
                50,
                RefreshPolicy::edram_baseline(),
                |e, s| e.memory_energy_vs(s),
            )
            .unwrap();
        assert!(avg > 0.0 && avg < 2.0, "normalised energy was {avg}");
        // Averages over apps that were not run are None.
        assert!(results
            .average_over(
                &[AppPreset::Lu],
                50,
                RefreshPolicy::edram_baseline(),
                |e, s| { e.memory_energy_vs(s) }
            )
            .is_none());
    }

    #[test]
    fn class_filter_uses_paper_binning() {
        let results = SweepResults {
            apps: AppPreset::ALL.to_vec(),
            ..SweepResults::default()
        };
        assert_eq!(results.apps_in_class(AppClass::Class1).len(), 4);
        assert_eq!(results.apps_in_class(AppClass::Class3).len(), 3);
    }

    #[test]
    fn sweep_point_labels() {
        let p = SweepPoint {
            retention_us: 50,
            policy: RefreshPolicy::recommended(),
        };
        assert_eq!(p.label(), "R.WB(32,32)");
        assert!(p.to_string().contains("50 us"));
    }
}
