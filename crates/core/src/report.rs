//! Simulation reports.

use std::fmt;

use refrint_energy::accounting::EnergyCounts;
use refrint_energy::breakdown::EnergyBreakdown;
use refrint_engine::stats::StatRegistry;

/// The result of running one workload on one system configuration.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Label of the configuration that produced this report
    /// (e.g. `eDRAM 50us R.WB(32,32)`).
    pub config_label: String,
    /// Name of the workload that was run.
    pub workload: String,
    /// Execution time in cycles (the slowest core's finishing time).
    pub execution_cycles: u64,
    /// Raw event counts.
    pub counts: EnergyCounts,
    /// Energy breakdown computed from the counts.
    pub breakdown: EnergyBreakdown,
    /// Detailed per-structure statistics (hit/miss/invalidations/etc.).
    pub stats: StatRegistry,
}

impl SimReport {
    /// Misses per thousand data references at the L3 (a convenient summary
    /// of how much a policy hurts locality).
    #[must_use]
    pub fn l3_miss_rate_per_mille(&self) -> f64 {
        let refs = self.counts.dl1_accesses.max(1);
        self.counts.dram_reads as f64 * 1000.0 / refs as f64
    }

    /// Refreshes per kilo-cycle across the hierarchy (a summary of refresh
    /// activity).
    #[must_use]
    pub fn refreshes_per_kilocycle(&self) -> f64 {
        self.counts.total_refreshes() as f64 * 1000.0 / self.execution_cycles.max(1) as f64
    }

    /// Execution time of this run relative to `baseline` (1.0 = same).
    #[must_use]
    pub fn slowdown_vs(&self, baseline: &SimReport) -> f64 {
        self.execution_cycles as f64 / baseline.execution_cycles.max(1) as f64
    }

    /// Memory-hierarchy energy relative to `baseline`.
    #[must_use]
    pub fn memory_energy_vs(&self, baseline: &SimReport) -> f64 {
        let base = baseline.breakdown.memory_total();
        if base > 0.0 {
            self.breakdown.memory_total() / base
        } else {
            0.0
        }
    }

    /// Total system energy relative to `baseline`.
    #[must_use]
    pub fn system_energy_vs(&self, baseline: &SimReport) -> f64 {
        let base = baseline.breakdown.total_system();
        if base > 0.0 {
            self.breakdown.total_system() / base
        } else {
            0.0
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run             : {} on {}",
            self.workload, self.config_label
        )?;
        writeln!(f, "execution       : {} cycles", self.execution_cycles)?;
        writeln!(f, "instructions    : {}", self.counts.instructions)?;
        writeln!(
            f,
            "accesses        : dl1 {}  l2 {}  l3 {}  dram {} (r {} / w {})",
            self.counts.dl1_accesses,
            self.counts.l2_accesses,
            self.counts.l3_accesses,
            self.counts.dram_accesses(),
            self.counts.dram_reads,
            self.counts.dram_writes
        )?;
        writeln!(
            f,
            "refreshes       : l1 {}  l2 {}  l3 {}",
            self.counts.l1_refreshes, self.counts.l2_refreshes, self.counts.l3_refreshes
        )?;
        writeln!(
            f,
            "memory energy   : {:.3} uJ (dyn {:.3} / leak {:.3} / refresh {:.3} / dram {:.3})",
            self.breakdown.memory_total() * 1e6,
            self.breakdown.on_chip_dynamic() * 1e6,
            self.breakdown.on_chip_leakage() * 1e6,
            self.breakdown.refresh_total() * 1e6,
            self.breakdown.dram * 1e6
        )?;
        write!(
            f,
            "system energy   : {:.3} uJ",
            self.breakdown.total_system() * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, l3_energy_scale: f64) -> SimReport {
        let counts = EnergyCounts {
            dl1_accesses: 1000,
            dram_reads: 10,
            l3_refreshes: 500,
            cycles,
            ..EnergyCounts::default()
        };
        let breakdown = EnergyBreakdown {
            l3_leakage: 1.0 * l3_energy_scale,
            dram: 0.1,
            core_dynamic: 0.5,
            ..EnergyBreakdown::default()
        };
        SimReport {
            config_label: "test".into(),
            workload: "w".into(),
            execution_cycles: cycles,
            counts,
            breakdown,
            stats: StatRegistry::new(),
        }
    }

    #[test]
    fn summary_metrics() {
        let r = report(1000, 1.0);
        assert!((r.l3_miss_rate_per_mille() - 10.0).abs() < 1e-12);
        assert!((r.refreshes_per_kilocycle() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn relative_metrics() {
        let base = report(1000, 1.0);
        let slower = report(1200, 0.5);
        assert!((slower.slowdown_vs(&base) - 1.2).abs() < 1e-12);
        assert!(slower.memory_energy_vs(&base) < 1.0);
        assert!(slower.system_energy_vs(&base) < 1.0);
    }

    #[test]
    fn display_contains_sections() {
        let text = report(1000, 1.0).to_string();
        assert!(text.contains("execution"));
        assert!(text.contains("memory energy"));
        assert!(text.contains("system energy"));
    }
}
