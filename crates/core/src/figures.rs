//! Regeneration of the paper's evaluation artefacts: Table 6.1 and
//! Figures 6.1–6.4.
//!
//! Each generator takes [`SweepResults`] and produces the same rows/series
//! the paper plots, normalised to the full-SRAM baseline exactly as the
//! paper does. The `refrint-bench` crate's `gen-figures` binary and the
//! Criterion benches call into these functions.

use refrint_edram::policy::RefreshPolicy;
use refrint_energy::report::{NormalizedSeries, StackedBar};
use refrint_workloads::apps::AppPreset;
use refrint_workloads::classify::{classify, AppClass, ClassificationReport, ClassifierConfig};

use crate::experiment::SweepResults;
use crate::report::SimReport;

/// Which subset of applications a figure averages over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSelection {
    /// Average over every application in the sweep (the paper's "all" plot).
    All,
    /// Average over one application class (the paper's per-class plots).
    Class(AppClass),
}

impl AppSelection {
    fn apps(self, results: &SweepResults) -> Vec<AppPreset> {
        match self {
            AppSelection::All => results.apps.clone(),
            AppSelection::Class(c) => results.apps_in_class(c),
        }
    }

    /// The label the paper uses for this selection (`all`, `class1`, ...).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            AppSelection::All => "all".to_owned(),
            AppSelection::Class(c) => c.label().to_owned(),
        }
    }
}

fn per_app_normalized<F>(
    results: &SweepResults,
    apps: &[AppPreset],
    retention_us: u64,
    policy: RefreshPolicy,
    f: F,
) -> Option<f64>
where
    F: Fn(&SimReport, &SimReport) -> f64,
{
    results.average_over(apps, retention_us, policy, f)
}

/// **Table 6.1** — classify every application of the sweep and return the
/// reports (footprint, visibility, class).
#[must_use]
pub fn table_6_1(results: &SweepResults) -> Vec<ClassificationReport> {
    let config = ClassifierConfig::default();
    results
        .apps
        .iter()
        .map(|app| classify(&app.model(), &config))
        .collect()
}

/// **Figure 6.1** — memory-hierarchy energy split as L1 / L2 / L3 / DRAM,
/// normalised to the full-SRAM memory energy, averaged over all
/// applications; one series per retention time, one bar per policy.
#[must_use]
pub fn figure_6_1(results: &SweepResults) -> Vec<NormalizedSeries> {
    let apps = results.apps.clone();
    let mut out = Vec::new();
    for &retention in &results.retentions_us {
        let mut series = NormalizedSeries::new(&format!("{retention} us"));
        for &policy in &results.policies {
            let component = |pick: fn(&SimReport) -> f64| {
                per_app_normalized(results, &apps, retention, policy, |e, s| {
                    let base = s.breakdown.memory_total();
                    if base > 0.0 {
                        pick(e) / base
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0)
            };
            series.push(StackedBar::new(
                &policy.label(),
                &[
                    ("L1", component(|r| r.breakdown.l1_total())),
                    ("L2", component(|r| r.breakdown.l2_total())),
                    ("L3", component(|r| r.breakdown.l3_total())),
                    ("DRAM", component(|r| r.breakdown.dram)),
                ],
            ));
        }
        out.push(series);
    }
    out
}

/// **Figure 6.2** — memory-hierarchy energy split as on-chip dynamic /
/// leakage / refresh / DRAM, normalised to the full-SRAM memory energy,
/// averaged over `selection` (class 1/2/3 or all); one series per retention
/// time, one bar per policy.
#[must_use]
pub fn figure_6_2(results: &SweepResults, selection: AppSelection) -> Vec<NormalizedSeries> {
    let apps = selection.apps(results);
    let mut out = Vec::new();
    for &retention in &results.retentions_us {
        let mut series = NormalizedSeries::new(&format!("{retention} us ({})", selection.label()));
        for &policy in &results.policies {
            let component = |pick: fn(&SimReport) -> f64| {
                per_app_normalized(results, &apps, retention, policy, |e, s| {
                    let base = s.breakdown.memory_total();
                    if base > 0.0 {
                        pick(e) / base
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0)
            };
            series.push(StackedBar::new(
                &policy.label(),
                &[
                    ("Dynamic", component(|r| r.breakdown.on_chip_dynamic())),
                    ("Leakage", component(|r| r.breakdown.on_chip_leakage())),
                    ("Refresh", component(|r| r.breakdown.refresh_total())),
                    ("DRAM", component(|r| r.breakdown.dram)),
                ],
            ));
        }
        out.push(series);
    }
    out
}

/// **Figure 6.3** — total system energy (cores, caches, network, DRAM)
/// normalised to the full-SRAM system energy, averaged over `selection`.
#[must_use]
pub fn figure_6_3(results: &SweepResults, selection: AppSelection) -> Vec<NormalizedSeries> {
    let apps = selection.apps(results);
    let mut out = Vec::new();
    for &retention in &results.retentions_us {
        let mut series = NormalizedSeries::new(&format!("{retention} us ({})", selection.label()));
        for &policy in &results.policies {
            let value = per_app_normalized(results, &apps, retention, policy, |e, s| {
                e.system_energy_vs(s)
            })
            .unwrap_or(0.0);
            series.push(StackedBar::new(&policy.label(), &[("Energy", value)]));
        }
        out.push(series);
    }
    out
}

/// **Figure 6.4** — execution time normalised to the full-SRAM execution
/// time, averaged over `selection`.
#[must_use]
pub fn figure_6_4(results: &SweepResults, selection: AppSelection) -> Vec<NormalizedSeries> {
    let apps = selection.apps(results);
    let mut out = Vec::new();
    for &retention in &results.retentions_us {
        let mut series = NormalizedSeries::new(&format!("{retention} us ({})", selection.label()));
        for &policy in &results.policies {
            let value =
                per_app_normalized(results, &apps, retention, policy, |e, s| e.slowdown_vs(s))
                    .unwrap_or(0.0);
            series.push(StackedBar::new(&policy.label(), &[("Time", value)]));
        }
        out.push(series);
    }
    out
}

/// The headline summary the paper quotes in its abstract and conclusions:
/// at a given retention time, the normalised memory energy, system energy
/// and slowdown of the naive eDRAM baseline (`P.all`) and of the recommended
/// policy (`R.WB(32,32)`), averaged over all applications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineSummary {
    /// Retention time the summary was computed at.
    pub retention_us: u64,
    /// `Periodic All` memory energy relative to SRAM.
    pub baseline_memory_energy: f64,
    /// `Refrint WB(32,32)` memory energy relative to SRAM.
    pub refrint_memory_energy: f64,
    /// `Periodic All` total system energy relative to SRAM.
    pub baseline_system_energy: f64,
    /// `Refrint WB(32,32)` total system energy relative to SRAM.
    pub refrint_system_energy: f64,
    /// `Periodic All` execution time relative to SRAM.
    pub baseline_slowdown: f64,
    /// `Refrint WB(32,32)` execution time relative to SRAM.
    pub refrint_slowdown: f64,
}

/// Computes the headline summary at `retention_us` (50 µs in the paper).
#[must_use]
pub fn headline_summary(results: &SweepResults, retention_us: u64) -> Option<HeadlineSummary> {
    let apps = results.apps.clone();
    let baseline = RefreshPolicy::edram_baseline();
    let refrint = RefreshPolicy::recommended();
    let avg = |policy, f: fn(&SimReport, &SimReport) -> f64| {
        per_app_normalized(results, &apps, retention_us, policy, f)
    };
    Some(HeadlineSummary {
        retention_us,
        baseline_memory_energy: avg(baseline, |e, s| e.memory_energy_vs(s))?,
        refrint_memory_energy: avg(refrint, |e, s| e.memory_energy_vs(s))?,
        baseline_system_energy: avg(baseline, |e, s| e.system_energy_vs(s))?,
        refrint_system_energy: avg(refrint, |e, s| e.system_energy_vs(s))?,
        baseline_slowdown: avg(baseline, |e, s| e.slowdown_vs(s))?,
        refrint_slowdown: avg(refrint, |e, s| e.slowdown_vs(s))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_sweep, ExperimentConfig};
    use refrint_edram::policy::{DataPolicy, TimePolicy};

    fn tiny_results() -> SweepResults {
        let cfg = ExperimentConfig {
            apps: vec![AppPreset::Blackscholes, AppPreset::Fft],
            retentions_us: vec![50],
            policies: vec![
                RefreshPolicy::edram_baseline(),
                RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
                RefreshPolicy::recommended(),
            ],
            refs_per_thread: 1_500,
            seed: 5,
            cores: 4,
            models: Vec::new(),
            traces: Vec::new(),
            ..ExperimentConfig::default()
        };
        run_sweep(&cfg).unwrap()
    }

    #[test]
    fn table_6_1_reports_every_app() {
        let results = tiny_results();
        let table = table_6_1(&results);
        assert_eq!(table.len(), 2);
        assert!(table
            .iter()
            .any(|r| r.name == "fft" && r.class == AppClass::Class1));
        assert!(table
            .iter()
            .any(|r| r.name == "blackscholes" && r.class == AppClass::Class3));
    }

    #[test]
    fn figure_6_1_has_one_series_per_retention_and_bar_per_policy() {
        let results = tiny_results();
        let fig = figure_6_1(&results);
        assert_eq!(fig.len(), 1);
        assert_eq!(fig[0].bars.len(), 3);
        for bar in &fig[0].bars {
            assert_eq!(bar.components.len(), 4);
            assert!(
                bar.total() > 0.0 && bar.total() < 2.0,
                "{}: {}",
                bar.label,
                bar.total()
            );
        }
    }

    #[test]
    fn figure_6_2_components_sum_to_figure_6_1_totals() {
        let results = tiny_results();
        let by_level = figure_6_1(&results);
        let by_component = figure_6_2(&results, AppSelection::All);
        for (a, b) in by_level[0].bars.iter().zip(by_component[0].bars.iter()) {
            assert_eq!(a.label, b.label);
            assert!(
                (a.total() - b.total()).abs() < 1e-9,
                "{}: {} vs {}",
                a.label,
                a.total(),
                b.total()
            );
        }
    }

    #[test]
    fn figure_6_3_and_6_4_have_single_component_bars() {
        let results = tiny_results();
        for series in figure_6_3(&results, AppSelection::Class(AppClass::Class1)) {
            for bar in &series.bars {
                assert_eq!(bar.components.len(), 1);
                assert!(bar.total() > 0.0);
            }
        }
        for series in figure_6_4(&results, AppSelection::All) {
            for bar in &series.bars {
                assert_eq!(bar.components.len(), 1);
                assert!(bar.total() > 0.5, "slowdowns are near or above 1.0");
            }
        }
    }

    #[test]
    fn headline_summary_shows_the_paper_orderings() {
        let results = tiny_results();
        let h = headline_summary(&results, 50).unwrap();
        // eDRAM saves memory energy relative to SRAM, Refrint saves more than
        // the naive baseline, and the naive baseline is slower than Refrint.
        assert!(h.baseline_memory_energy < 1.0);
        assert!(h.refrint_memory_energy < h.baseline_memory_energy);
        assert!(h.refrint_system_energy < h.baseline_system_energy);
        assert!(h.baseline_slowdown > h.refrint_slowdown);
        assert!(headline_summary(&results, 100).is_none());
    }

    #[test]
    fn selection_labels() {
        assert_eq!(AppSelection::All.label(), "all");
        assert_eq!(AppSelection::Class(AppClass::Class2).label(), "class2");
    }
}
