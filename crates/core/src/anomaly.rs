//! Sweep analytics: anomaly detection over [`SweepResults`].
//!
//! A 10k-point sweep is an opaque dump; this pass scores every eDRAM point
//! against its *parameter neighbourhood* — the runs that differ from it
//! along exactly one axis (same workload and retention, varying policy;
//! same workload and policy, varying retention; same retention and policy,
//! varying workload) — using the robust (median/MAD) z-scores from
//! `refrint_obs::anomaly`. Flagged points surface in `sweep --format json`
//! and the `refrint-serve` sweep response as the `anomalies` array.
//!
//! Two metrics are scored: total system energy and execution cycles — the
//! two quantities the paper's argument rests on. Refresh policies
//! legitimately differ a lot (Periodic All refreshes every line every
//! period), which is why the scoring is median/MAD based with a
//! conservative threshold: a point is only flagged when it does not fit
//! neighbours that share everything but one parameter.

use std::collections::BTreeMap;

use refrint_obs::anomaly::{flag_outliers_with, AnomalyTuning};

use crate::experiment::SweepResults;
use crate::report::SimReport;

/// Extracts one scored metric from a point's [`PointMetrics`].
type MetricFn = fn(&PointMetrics) -> f64;

/// Builds, from a point's `(workload, retention, policy)` key, the slice
/// key shared by the points that agree on everything except one axis.
type SliceKeyFn = fn(&(String, u64, String)) -> (String, String);

/// The metrics the analytics pass scores, as `(name, extractor)` pairs.
const METRICS: [(&str, MetricFn); 2] = [
    ("system_energy_j", |m| m.system_energy_j),
    ("execution_cycles", |m| m.execution_cycles as f64),
];

/// The two quantities anomaly scoring reads from a sweep point. Callers
/// that hold full [`SimReport`]s go through [`detect_tuned`]; callers that
/// only hold rendered report JSON (the serve coordinator) parse these two
/// fields back out and call [`detect_points`] directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMetrics {
    /// `energy_j.system_total` of the run.
    pub system_energy_j: f64,
    /// `execution_cycles` of the run.
    pub execution_cycles: u64,
}

impl PointMetrics {
    /// Extracts the scored metrics from a full report.
    #[must_use]
    pub fn of(report: &SimReport) -> Self {
        Self {
            system_energy_j: report.breakdown.total_system(),
            execution_cycles: report.execution_cycles,
        }
    }
}

/// One flagged sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAnomaly {
    /// Workload of the flagged run.
    pub workload: String,
    /// Retention time of the flagged run, in microseconds.
    pub retention_us: u64,
    /// Policy label of the flagged run.
    pub policy: String,
    /// Which metric did not fit (`system_energy_j` or `execution_cycles`).
    pub metric: &'static str,
    /// The axis whose neighbourhood flagged it (`policy`, `retention_us`
    /// or `workload`). When several axes agree, the one with the largest
    /// score wins.
    pub axis: &'static str,
    /// The point's metric value.
    pub value: f64,
    /// The neighbourhood median it was judged against.
    pub median: f64,
    /// The modified z-score (signed).
    pub robust_z: f64,
}

/// Scores `results` with the default tuning
/// ([`refrint_obs::anomaly::DEFAULT_THRESHOLD`] over slices of at least
/// [`refrint_obs::anomaly::MIN_SLICE`]).
#[must_use]
pub fn detect(results: &SweepResults) -> Vec<SweepAnomaly> {
    detect_tuned(results, AnomalyTuning::default())
}

/// [`detect_tuned`] with only the threshold overridden.
#[must_use]
pub fn detect_with(results: &SweepResults, threshold: f64) -> Vec<SweepAnomaly> {
    detect_tuned(
        results,
        AnomalyTuning {
            threshold,
            ..AnomalyTuning::default()
        },
    )
}

/// Scores every eDRAM point in `results` against its three axis
/// neighbourhoods and returns the points whose modified z-score magnitude
/// reaches the tuning's threshold for some metric (in slices of at least
/// the tuning's minimum size). Each `(point, metric)` pair is reported at
/// most once — the axis with the largest score. Output order follows the
/// sweep's own (workload, retention, policy) order, so the report is
/// deterministic.
#[must_use]
pub fn detect_tuned(results: &SweepResults, tuning: AnomalyTuning) -> Vec<SweepAnomaly> {
    // The points in map order; indices below refer into this list.
    let points: Vec<((String, u64, String), PointMetrics)> = results
        .edram
        .iter()
        .map(|(key, r)| (key.clone(), PointMetrics::of(r)))
        .collect();
    detect_points(&points, tuning)
}

/// [`detect_tuned`] over bare `(key, metrics)` pairs instead of full
/// [`SweepResults`]. `points` must be sorted ascending by key — the order
/// a `BTreeMap` iterates in — or the output order (and the slice grouping
/// tie-breaks) will not match the local sweep path byte for byte.
#[must_use]
pub fn detect_points(
    points: &[((String, u64, String), PointMetrics)],
    tuning: AnomalyTuning,
) -> Vec<SweepAnomaly> {
    debug_assert!(
        points.windows(2).all(|w| w[0].0 < w[1].0),
        "points must be strictly sorted by (workload, retention, policy)"
    );
    let mut best: BTreeMap<(usize, &'static str), SweepAnomaly> = BTreeMap::new();
    for (metric, extract) in METRICS {
        let values: Vec<f64> = points.iter().map(|(_, m)| extract(m)).collect();
        // axis name -> slice key builder: the slice holds the points that
        // agree on everything *except* that axis.
        let axes: [(&'static str, SliceKeyFn); 3] = [
            ("policy", |k| (k.0.clone(), k.1.to_string())),
            ("retention_us", |k| (k.0.clone(), k.2.clone())),
            ("workload", |k| (k.1.to_string(), k.2.clone())),
        ];
        for (axis, slice_key) in axes {
            let mut slices: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
            for (i, (key, _)) in points.iter().enumerate() {
                slices.entry(slice_key(key)).or_default().push(i);
            }
            for indices in slices.values() {
                let slice: Vec<f64> = indices.iter().map(|&i| values[i]).collect();
                for flag in flag_outliers_with(&slice, tuning.threshold, tuning.min_slice) {
                    let i = indices[flag.index];
                    let (workload, retention_us, policy) = &points[i].0;
                    let entry = SweepAnomaly {
                        workload: workload.clone(),
                        retention_us: *retention_us,
                        policy: policy.clone(),
                        metric,
                        axis,
                        value: flag.value,
                        median: flag.median,
                        robust_z: flag.robust_z,
                    };
                    best.entry((i, metric))
                        .and_modify(|prev| {
                            if flag.robust_z.abs() > prev.robust_z.abs() {
                                *prev = entry.clone();
                            }
                        })
                        .or_insert(entry);
                }
            }
        }
    }
    best.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::sweep::SweepRunner;
    use refrint_edram::policy::RefreshPolicy;
    use refrint_workloads::apps::AppPreset;

    fn small_sweep() -> SweepResults {
        let config = ExperimentConfig {
            apps: vec![AppPreset::Lu],
            retentions_us: vec![50],
            policies: RefreshPolicy::paper_sweep(),
            refs_per_thread: 400,
            cores: 2,
            ..ExperimentConfig::default()
        };
        SweepRunner::new(config)
            .sequential()
            .run()
            .expect("small sweep runs")
    }

    #[test]
    fn a_real_sweep_is_clean_at_the_default_threshold() {
        let results = small_sweep();
        let flagged = detect(&results);
        assert!(
            flagged.is_empty(),
            "legitimate policy spread must not be flagged: {flagged:?}"
        );
    }

    #[test]
    fn a_perturbed_point_is_flagged_and_only_it() {
        let mut results = small_sweep();
        let victim = results
            .edram
            .keys()
            .find(|(_, _, p)| p == "R.WB(32,32)")
            .cloned()
            .expect("the recommended policy is in the paper sweep");
        // Simulate a corrupted run: its energy is wildly off while its
        // neighbours (same workload and retention, other policies) agree.
        let report = results.edram.get_mut(&victim).unwrap();
        report.breakdown.dram *= 400.0;

        let flagged = detect(&results);
        assert!(!flagged.is_empty(), "the perturbed point must be flagged");
        for a in &flagged {
            assert_eq!(
                (a.workload.as_str(), a.retention_us, a.policy.as_str()),
                (victim.0.as_str(), victim.1, victim.2.as_str()),
                "only the perturbed point may be flagged: {flagged:?}"
            );
            assert_eq!(a.metric, "system_energy_j");
            assert_eq!(a.axis, "policy");
            assert!(a.robust_z > 0.0);
            assert!(a.robust_z.is_finite());
        }
    }

    #[test]
    fn tuned_detection_responds_to_threshold_and_min_slice() {
        let mut results = small_sweep();
        let victim = results
            .edram
            .keys()
            .find(|(_, _, p)| p == "R.WB(32,32)")
            .cloned()
            .unwrap();
        results.edram.get_mut(&victim).unwrap().breakdown.dram *= 400.0;

        let default_flags = detect(&results);
        assert!(!default_flags.is_empty());
        assert_eq!(
            default_flags,
            detect_tuned(&results, AnomalyTuning::default()),
            "default tuning must reproduce detect() exactly"
        );
        // A minimum slice larger than any neighbourhood silences the pass.
        let silenced = detect_tuned(&results, AnomalyTuning::new(8.0, 10_000).unwrap());
        assert!(silenced.is_empty(), "min_slice gates scoring: {silenced:?}");
        // A looser threshold flags at least as much as the default.
        let loose = detect_tuned(&results, AnomalyTuning::new(1.0, 4).unwrap());
        assert!(loose.len() >= default_flags.len());
    }
}
