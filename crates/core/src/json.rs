//! JSON emitters for the suite's machine-readable documents.
//!
//! The workspace builds without external dependencies, so instead of serde
//! derives this module hand-emits the small, stable document shapes every
//! front end needs: one [`SimReport`] (`refrint-cli run --format json`, the
//! `refrint-serve` `POST /run` response), full [`SweepResults`]
//! (`sweep --format json`, `POST /sweep`), and a
//! [`TraceSummary`](refrint_trace::TraceSummary)
//! (`trace info --format json`). Keeping exactly one implementation here is
//! what makes the server's byte-identity guarantee checkable: the CLI and
//! the service render through the same code.
//!
//! String escaping and the matching parser live in
//! [`refrint_engine::json`]; non-finite floats (which the energy model
//! never produces) render as `null`.

pub use refrint_engine::json::{escape, num};
use refrint_trace::TraceSummary;

use crate::anomaly::{self, SweepAnomaly};
use crate::experiment::SweepResults;
use crate::report::SimReport;

/// Renders one [`SimReport`] as a JSON object.
#[must_use]
pub fn report(r: &SimReport) -> String {
    let c = &r.counts;
    let b = &r.breakdown;
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"config\":\"{}\",\"execution_cycles\":{},",
            "\"counts\":{{\"instructions\":{},\"il1_accesses\":{},\"dl1_accesses\":{},",
            "\"l2_accesses\":{},\"l3_accesses\":{},\"l1_refreshes\":{},",
            "\"l2_refreshes\":{},\"l3_refreshes\":{},\"dram_reads\":{},",
            "\"dram_writes\":{},\"noc_flit_hops\":{}}},",
            "\"energy_j\":{{\"memory_total\":{},\"system_total\":{},",
            "\"on_chip_dynamic\":{},\"on_chip_leakage\":{},\"refresh\":{},\"dram\":{}}},",
            "\"l3_miss_rate_per_mille\":{},\"refreshes_per_kilocycle\":{}}}"
        ),
        escape(&r.workload),
        escape(&r.config_label),
        r.execution_cycles,
        c.instructions,
        c.il1_accesses,
        c.dl1_accesses,
        c.l2_accesses,
        c.l3_accesses,
        c.l1_refreshes,
        c.l2_refreshes,
        c.l3_refreshes,
        c.dram_reads,
        c.dram_writes,
        c.noc_flit_hops,
        num(b.memory_total()),
        num(b.total_system()),
        num(b.on_chip_dynamic()),
        num(b.on_chip_leakage()),
        num(b.refresh_total()),
        num(b.dram),
        num(r.l3_miss_rate_per_mille()),
        num(r.refreshes_per_kilocycle()),
    )
}

/// Renders one flagged sweep point for the `anomalies` array.
fn sweep_anomaly(a: &SweepAnomaly) -> String {
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"retention_us\":{},\"policy\":\"{}\",",
            "\"metric\":\"{}\",\"axis\":\"{}\",\"value\":{},\"median\":{},",
            "\"robust_z\":{}}}"
        ),
        escape(&a.workload),
        a.retention_us,
        escape(&a.policy),
        a.metric,
        a.axis,
        num(a.value),
        num(a.median),
        num(a.robust_z),
    )
}

/// Renders full [`SweepResults`] as a JSON object: the swept axes, one
/// entry per run, and the `anomalies` the analytics pass flagged (see
/// [`crate::anomaly`]). Map iteration is ordered, so the output is
/// deterministic.
#[must_use]
pub fn sweep(results: &SweepResults) -> String {
    sweep_tuned(results, refrint_obs::anomaly::AnomalyTuning::default())
}

/// Renders one entry of a sweep document's `runs` array from an
/// already-rendered report object. `point` is `None` for the SRAM
/// baseline, `Some((retention_us, policy_label))` for an eDRAM point.
/// Shared between the local sweep path and the serve coordinator, which
/// wraps report bodies it received from backends — one implementation is
/// what keeps the two byte-identical.
#[must_use]
pub fn sweep_run_entry(workload: &str, point: Option<(u64, &str)>, report_json: &str) -> String {
    match point {
        None => format!(
            "{{\"workload\":\"{}\",\"retention_us\":null,\"policy\":null,\"report\":{report_json}}}",
            escape(workload),
        ),
        Some((retention_us, label)) => format!(
            "{{\"workload\":\"{}\",\"retention_us\":{retention_us},\"policy\":\"{}\",\"report\":{report_json}}}",
            escape(workload),
            escape(label),
        ),
    }
}

/// Assembles the final sweep document from pre-rendered `runs` entries
/// (see [`sweep_run_entry`]) and detected anomalies. `workloads` are raw
/// names; escaping and quoting happen here.
#[must_use]
pub fn sweep_document(
    workloads: &[String],
    retentions_us: &[u64],
    runs: &[String],
    anomalies: &[SweepAnomaly],
) -> String {
    let workloads: Vec<String> = workloads
        .iter()
        .map(|w| format!("\"{}\"", escape(w)))
        .collect();
    let retentions: Vec<String> = retentions_us.iter().map(u64::to_string).collect();
    let anomalies: Vec<String> = anomalies.iter().map(sweep_anomaly).collect();
    format!(
        "{{\"workloads\":[{}],\"retentions_us\":[{}],\"runs\":[{}],\"anomalies\":[{}]}}",
        workloads.join(","),
        retentions.join(","),
        runs.join(","),
        anomalies.join(",")
    )
}

/// [`sweep`] with caller-chosen anomaly tunables. The default tuning
/// reproduces [`sweep`] byte for byte; only the `anomalies` array can
/// differ under a non-default tuning.
#[must_use]
pub fn sweep_tuned(results: &SweepResults, tuning: refrint_obs::anomaly::AnomalyTuning) -> String {
    let mut runs = Vec::with_capacity(results.sram.len() + results.edram.len());
    for (workload, r) in &results.sram {
        runs.push(sweep_run_entry(workload, None, &report(r)));
    }
    for ((workload, retention_us, label), r) in &results.edram {
        runs.push(sweep_run_entry(
            workload,
            Some((*retention_us, label)),
            &report(r),
        ));
    }
    let workloads: Vec<String> = results
        .apps
        .iter()
        .map(|a| a.name().to_owned())
        .chain(results.traces.iter().map(|t| t.name.clone()))
        .collect();
    let anomalies = anomaly::detect_tuned(results, tuning);
    sweep_document(&workloads, &results.retentions_us, &runs, &anomalies)
}

/// Renders one histogram as `{"mean":…,"p50":…,"p90":…,"p99":…,"max":…}`
/// (all `null` when the histogram has no samples).
fn histogram(h: &refrint_engine::stats::Histogram) -> String {
    let pct = |p: f64| match h.percentile(p) {
        Some(v) => v.to_string(),
        None => "null".to_owned(),
    };
    format!(
        "{{\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        h.mean().map_or_else(|| "null".to_owned(), num),
        pct(50.0),
        pct(90.0),
        pct(99.0),
        h.max().map_or_else(|| "null".to_owned(), |v| v.to_string()),
    )
}

/// Renders a [`TraceSummary`] as a JSON object (the machine-readable form
/// of `refrint-cli trace info`).
#[must_use]
pub fn trace_summary(s: &TraceSummary) -> String {
    let per_thread: Vec<String> = s.per_thread.iter().map(u64::to_string).collect();
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"format\":\"{}\",\"threads\":{},\"seed\":{},",
            "\"records\":{},\"reads\":{},\"writes\":{},\"per_thread\":[{}],",
            "\"gap_cycles\":{},\"addr_stride_bytes\":{},",
            "\"min_addr\":{},\"max_addr\":{},\"address_span_bytes\":{}}}"
        ),
        escape(&s.meta.workload),
        escape(&s.format.to_string()),
        s.meta.threads,
        s.meta.seed,
        s.records,
        s.reads,
        s.writes,
        per_thread.join(","),
        histogram(&s.gaps),
        histogram(&s.strides),
        s.min_addr,
        s.max_addr,
        s.address_span(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use refrint_engine::json::{parse, Value};

    #[test]
    fn report_json_is_balanced_and_complete() {
        let mut sim = Simulation::builder()
            .cores(2)
            .refs_per_thread(500)
            .build()
            .unwrap();
        let outcome = sim.run(AppPreset::Lu);
        let doc = report(&outcome.report);
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("workload").and_then(Value::as_str), Some("lu"));
        for key in [
            "\"workload\":\"lu\"",
            "\"execution_cycles\":",
            "\"dram_reads\":",
            "\"memory_total\":",
            "\"refreshes_per_kilocycle\":",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn sweep_json_lists_every_run() {
        let config = ExperimentConfig {
            apps: vec![AppPreset::Lu],
            retentions_us: vec![50],
            policies: vec![RefreshPolicy::recommended()],
            refs_per_thread: 600,
            cores: 2,
            ..ExperimentConfig::default()
        };
        let results = SweepRunner::new(config).sequential().run().unwrap();
        let doc = sweep(&results);
        assert!(parse(&doc).is_ok(), "sweep output must be valid JSON");
        assert!(doc.contains("\"workloads\":[\"lu\"]"));
        assert!(doc.contains("\"retention_us\":null"));
        assert!(doc.contains("\"retention_us\":50"));
        assert!(doc.contains("R.WB(32,32)"));
        assert_eq!(doc.matches("\"report\":").count(), 2);
    }

    #[test]
    fn trace_summary_json_round_trips_through_the_parser() {
        let path =
            std::env::temp_dir().join(format!("refrint-json-summary-{}.rft", std::process::id()));
        let sim = Simulation::builder()
            .cores(2)
            .refs_per_thread(400)
            .build()
            .unwrap();
        sim.capture(AppPreset::Fft, &path).unwrap();
        let trace = TraceFile::open(&path).unwrap();
        let summary = TraceSummary::collect(&trace).unwrap();
        let doc = trace_summary(&summary);
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("workload").and_then(Value::as_str), Some("fft"));
        assert_eq!(parsed.get("threads").and_then(Value::as_u64), Some(2));
        assert_eq!(parsed.get("records").and_then(Value::as_u64), Some(800));
        assert!(parsed.get("gap_cycles").unwrap().get("p99").is_some());
        std::fs::remove_file(&path).ok();
    }
}
