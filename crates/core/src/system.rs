//! The chip-multiprocessor system simulator.
//!
//! [`CmpSystem`] assembles the paper's 16-core chip (private DL1/L2 per tile,
//! shared 16-bank L3 with a directory protocol — MESI by default, update-
//! based Dragon as an experiment axis — over a 4×4 torus, DRAM behind the
//! L3), runs deterministic synthetic workloads through it, and produces
//! [`SimReport`]s with execution time, event counts and energy.
//!
//! ## Simulation model
//!
//! Cores advance independently; the driver always processes the reference of
//! the core with the smallest local time, so coherence interleaving is
//! time-ordered. Each data reference is resolved transactionally through
//! DL1 → L2 → L3 → DRAM, with directory-induced invalidations and downgrades
//! applied immediately and their message latencies added to the requester's
//! critical path.
//!
//! Refresh behaviour is evaluated with the lazy decay-schedule algebra
//! (see `refrint-edram`): each time a line is touched, evicted, invalidated
//! or flushed, everything the refresh engine did to it since its previous
//! touch is settled in O(1). Policy-driven L3 invalidations additionally use
//! an *eager event queue* so that inclusive invalidations reach the private
//! caches at the right time — this is what makes aggressive policies hurt
//! low-visibility (Class 3) applications, as the paper describes.

use refrint_coherence::directory::Directory;
use refrint_coherence::protocol::{CoherenceEngine, CoreRequest};
use refrint_energy::accounting::EnergyCounts;
use refrint_energy::breakdown::EnergyBreakdown;
use refrint_engine::event::EventQueue;
use refrint_engine::stats::StatRegistry;
use refrint_engine::time::Cycle;
use refrint_mem::addr::LineAddr;
use refrint_mem::cache::Cache;
use refrint_mem::dram::{DramModel, DramOp};
use refrint_mem::line::{CacheLine, MesiState};
use refrint_noc::routing::hop_count;
use refrint_noc::topology::{NodeId, Torus};
use refrint_obs::{ObsConfig, ObsSummary, Recorder, Subsystem};
use refrint_workloads::apps::AppPreset;
use refrint_workloads::generator::ThreadStream;
use refrint_workloads::model::WorkloadModel;

use crate::config::SystemConfig;
use crate::error::RefrintError;
use crate::hierarchy::{line_kind, L3Bank, RefreshDomain, Tile};
use crate::report::SimReport;

/// A pending policy-driven invalidation of an L3 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingInvalidation {
    bank: usize,
    line: LineAddr,
    /// The touch timestamp the prediction was made from; if the line has
    /// been touched since, the event is stale and is skipped.
    touch: Cycle,
}

/// The simulated chip multiprocessor.
#[derive(Debug)]
pub struct CmpSystem {
    cfg: SystemConfig,
    tiles: Vec<Tile>,
    l3: Vec<L3Bank>,
    dir: Directory,
    protocol: CoherenceEngine,
    dram: DramModel,
    torus: Torus,
    counts: EnergyCounts,
    invalidations: EventQueue<PendingInvalidation>,
    /// Precomputed torus hop counts between node pairs (`a * nodes + b`),
    /// so per-message accounting is a table load instead of route math.
    hop_table: Vec<u32>,
    line_size: u64,
    data_flits: u64,
    ctrl_flits: u64,
    /// Reusable snapshot buffer for the end-of-run settlement sweeps (and
    /// any other path that needs a residency snapshot while mutating the
    /// system), so those paths never collect a fresh `Vec` per cache.
    scratch_lines: Vec<CacheLine>,
    /// The span recorder. Disabled by default (one branch per hook); when
    /// enabled it attributes latency contributions to subsystems without
    /// ever reading or writing simulated state, so reports stay
    /// byte-identical with observability on or off.
    obs: Recorder,
}

impl CmpSystem {
    /// Builds a system from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RefrintError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(cfg: SystemConfig) -> Result<Self, RefrintError> {
        cfg.validate()?;
        let retention = cfg.retention;
        let cells = cfg.cells;
        let private_policy = cfg.private_cache_policy();

        let tiles = (0..cfg.cores)
            .map(|t| Tile {
                dl1: Cache::with_replacement(
                    &format!("dl1.{t}"),
                    cfg.dl1.geometry,
                    cfg.dl1.replacement,
                    cfg.seed ^ (t as u64),
                ),
                l2: Cache::with_replacement(
                    &format!("l2.{t}"),
                    cfg.l2.geometry,
                    cfg.l2.replacement,
                    cfg.seed ^ (0x100 + t as u64),
                ),
                dl1_refresh: RefreshDomain::new(
                    &cfg.dl1,
                    private_policy,
                    retention,
                    cells,
                    Cycle::ZERO,
                ),
                l2_refresh: RefreshDomain::new(
                    &cfg.l2,
                    private_policy,
                    retention,
                    cells,
                    Cycle::ZERO,
                ),
            })
            .collect();

        // Per-bank retention: nominal everywhere under the uniform profile,
        // sampled per bank otherwise.
        let bank_retentions = cfg.bank_retentions();
        let l3 = (0..cfg.l3_banks)
            .map(|b| {
                let bank_retention = bank_retentions[b];
                // Stagger periodic refresh phases across banks so bursts do
                // not line up chip-wide (each bank phases within its own
                // retention period).
                let phase = Cycle::new(
                    (b as u64 * bank_retention.line_retention_cycles().raw()) / cfg.l3_banks as u64,
                );
                let refresh = RefreshDomain::from_factory(
                    &cfg.l3_bank,
                    cfg.l3_policy_factory(),
                    bank_retention,
                    cells,
                    phase,
                )
                .map_err(RefrintError::from)?;
                Ok(L3Bank {
                    cache: Cache::with_replacement(
                        &format!("l3.{b}"),
                        cfg.l3_bank.geometry,
                        cfg.l3_bank.replacement,
                        cfg.seed ^ (0x200 + b as u64),
                    ),
                    refresh,
                })
            })
            .collect::<Result<Vec<_>, RefrintError>>()?;

        let line_size = cfg.dl1.geometry.line_size();
        let data_flits = cfg.link.flits_for(line_size);
        let ctrl_flits = cfg.link.flits_for(cfg.link.control_bytes);
        let nodes = cfg.torus.num_nodes();
        let hop_table = (0..nodes * nodes)
            .map(|i| hop_count(&cfg.torus, NodeId::new(i / nodes), NodeId::new(i % nodes)))
            .collect();

        Ok(CmpSystem {
            dir: Directory::new(cfg.cores),
            protocol: CoherenceEngine::new(cfg.protocol, cfg.cores),
            dram: DramModel::paper_default(),
            torus: cfg.torus,
            tiles,
            l3,
            counts: EnergyCounts::default(),
            invalidations: EventQueue::new(),
            hop_table,
            line_size,
            data_flits,
            ctrl_flits,
            scratch_lines: Vec::new(),
            obs: Recorder::disabled(),
            cfg,
        })
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Turns on span recording with the given sampling configuration.
    ///
    /// Observability never perturbs the simulation — the recorder only
    /// accumulates attribution on the side — so enabling it changes no
    /// report field.
    pub fn enable_observability(&mut self, cfg: ObsConfig) {
        self.obs = Recorder::enabled(cfg);
    }

    /// Summarises everything the recorder collected (empty totals when
    /// observability was never enabled).
    #[must_use]
    pub fn obs_summary(&self) -> ObsSummary {
        self.obs.summary()
    }

    /// Whether span recording is on.
    #[must_use]
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Runs one of the named application presets, scaled by the
    /// configuration's `refs_per_thread` override if set.
    pub fn run_app(&mut self, app: AppPreset) -> SimReport {
        let model = app.model();
        self.run_model(&model)
    }

    /// Runs an arbitrary workload model (its thread count is adjusted to the
    /// configured core count, and its length to the configured scale).
    pub fn run_model(&mut self, model: &WorkloadModel) -> SimReport {
        let model = self.cfg.adjusted_model(model);
        let streams: Vec<ThreadStream> = (0..model.threads)
            .map(|t| ThreadStream::new(&model, t, self.cfg.seed))
            .collect();
        self.run_streams(&model.name, streams)
            .expect("the adjusted model has one stream per core")
    }

    /// Runs one reference stream per core through the system — the common
    /// driver behind both synthetic generation ([`CmpSystem::run_model`])
    /// and trace replay. Cores advance independently; the reference of the
    /// core with the smallest local time is always processed next, so the
    /// interleaving depends only on the streams' contents.
    ///
    /// # Errors
    ///
    /// Returns [`RefrintError::InvalidConfig`] if the stream count differs
    /// from the configured core count.
    pub fn run_streams<I>(
        &mut self,
        workload: &str,
        streams: Vec<I>,
    ) -> Result<SimReport, RefrintError>
    where
        I: Iterator<Item = refrint_workloads::trace::MemRef>,
    {
        if streams.len() != self.cfg.cores {
            return Err(RefrintError::InvalidConfig {
                reason: format!(
                    "{} reference streams supplied for {} cores (one stream per core required)",
                    streams.len(),
                    self.cfg.cores
                ),
            });
        }
        let workload_name = workload.to_owned();
        let line_shift = self.line_size.trailing_zeros();
        let mut streams = streams;
        let mut core_time = vec![Cycle::ZERO; self.cfg.cores];
        // Ascending list of cores whose streams are not exhausted; finished
        // cores drop out instead of being re-skipped on every dispatch.
        let mut live: Vec<usize> = (0..self.cfg.cores).collect();

        while !live.is_empty() {
            // Pick the live core with the smallest local time (ties go to
            // the lowest core index, since `live` stays ascending).
            let mut pos = 0;
            let mut best = core_time[live[0]];
            for (p, &c) in live.iter().enumerate().skip(1) {
                if core_time[c] < best {
                    best = core_time[c];
                    pos = p;
                }
            }
            let c = live[pos];
            match streams[c].next() {
                None => {
                    live.remove(pos);
                }
                Some(r) => {
                    let now = core_time[c] + Cycle::new(r.gap_cycles);
                    self.drain_invalidations(now);
                    let instructions = self.cfg.core.instructions_for_gap(r.gap_cycles);
                    self.counts.instructions += instructions;
                    self.counts.il1_accesses += self.cfg.core.fetches_for(instructions);
                    // line_size is validated as a power of two at build time;
                    // shift directly instead of re-validating per reference.
                    let line = LineAddr::new(r.addr.raw() >> line_shift);
                    let latency = self.access(c, line, r.is_write(), now);
                    core_time[c] = now + latency;
                }
            }
        }

        let end = core_time.iter().copied().max().unwrap_or(Cycle::ZERO);
        self.finalize(end);

        let counts = self.counts;
        let breakdown = EnergyBreakdown::compute_for_chip(
            &self.cfg.tech,
            self.cfg.cells,
            &counts,
            self.cfg.cores,
            self.cfg.l3_banks,
        );
        Ok(SimReport {
            config_label: self.cfg.label(),
            workload: workload_name,
            execution_cycles: end.raw(),
            counts,
            breakdown,
            stats: self.collect_stats(),
        })
    }

    // ----------------------------------------------------------------- //
    // Access path
    // ----------------------------------------------------------------- //

    fn hops(&self, a: usize, b: usize) -> u32 {
        let nodes = self.torus.num_nodes();
        self.hop_table[(a % nodes) * nodes + (b % nodes)]
    }

    /// Resolves one data reference and returns the latency the core observes.
    fn access(&mut self, tile: usize, line: LineAddr, is_write: bool, now: Cycle) -> Cycle {
        self.counts.dl1_accesses += 1;
        let l1_stall = self.tiles[tile].dl1_refresh.access_penalty(now, line.raw());
        let l1_latency = self.cfg.dl1.access_latency + l1_stall;
        if self.obs.is_enabled() {
            self.obs.record(
                Subsystem::Cache,
                "dl1.access",
                now.raw(),
                self.cfg.dl1.access_latency.raw(),
                tile as u64,
            );
            if l1_stall > Cycle::ZERO {
                self.obs.record(
                    Subsystem::Refresh,
                    "dl1.stall",
                    now.raw(),
                    l1_stall.raw(),
                    tile as u64,
                );
            }
        }
        let mut beyond = Cycle::ZERO;

        // One tag search resolves the access and hands back the pre-touch
        // line so its residency can be settled (Valid policy: refresh
        // charges only).
        let dl1_prev = self.tiles[tile].dl1.lookup_prev(line, now);
        if let Some((l, _)) = &dl1_prev {
            let s = self.tiles[tile]
                .dl1_refresh
                .settle(line_kind(l), l.meta.last_touch, now);
            self.counts.l1_refreshes += s.refreshes;
        }

        let mut upgraded = false;
        if dl1_prev.is_none() {
            beyond += self.lookup_l2(tile, line, is_write, now, &mut upgraded);
            // Fill the DL1 (write-through, so DL1 lines are always clean and
            // evictions are silent).
            self.tiles[tile].dl1.fill(line, MesiState::Shared, now);
        }

        if is_write {
            // Write-through: the store also updates the L2 copy. Its latency
            // is hidden by the store buffer, but energy and coherence are not.
            self.counts.l2_accesses += 1;
            if let Some(l2_line) = self.tiles[tile].l2.line(line).copied() {
                if !l2_line.state.can_write_silently() && !upgraded {
                    beyond += self.l3_transaction(tile, line, true, now);
                    // The transaction may have settled the line away (a
                    // decayed L3 copy triggers an inclusive invalidation),
                    // so re-check before applying the store.
                    if self.tiles[tile].l2.line(line).is_some() {
                        self.tiles[tile].l2.write_hit(line, now);
                    }
                } else {
                    self.tiles[tile].l2.write_hit(line, now);
                }
            }
        }

        self.cfg.core.observed_latency(l1_latency, beyond)
    }

    /// The DL1-miss path: L2 lookup, falling through to the L3 on a miss.
    /// Returns latency beyond the L1 and reports whether a write upgrade was
    /// already performed.
    fn lookup_l2(
        &mut self,
        tile: usize,
        line: LineAddr,
        is_write: bool,
        now: Cycle,
        upgraded: &mut bool,
    ) -> Cycle {
        self.counts.l2_accesses += 1;
        let l2_stall = self.tiles[tile].l2_refresh.access_penalty(now, line.raw());
        let mut beyond = self.cfg.l2.access_latency + l2_stall;
        if self.obs.is_enabled() {
            self.obs.record(
                Subsystem::Cache,
                "l2.lookup",
                now.raw(),
                self.cfg.l2.access_latency.raw(),
                tile as u64,
            );
            if l2_stall > Cycle::ZERO {
                self.obs.record(
                    Subsystem::Refresh,
                    "l2.stall",
                    now.raw(),
                    l2_stall.raw(),
                    tile as u64,
                );
            }
        }

        let l2_prev = self.tiles[tile].l2.lookup_prev(line, now);
        if let Some((l, _)) = &l2_prev {
            let s = self.tiles[tile]
                .l2_refresh
                .settle(line_kind(l), l.meta.last_touch, now);
            self.counts.l2_refreshes += s.refreshes;
        }

        let l2_state = l2_prev.map(|(_, o)| o.state);
        match l2_state {
            Some(state) => {
                if is_write && !state.can_write_silently() {
                    beyond += self.l3_transaction(tile, line, true, now);
                    *upgraded = true;
                }
            }
            None => {
                beyond += self.l3_transaction(tile, line, is_write, now);
                *upgraded = is_write;
            }
        }
        beyond
    }

    /// An L2 miss (or upgrade): go to the line's home L3 bank through the
    /// torus, consult the directory, fetch from DRAM if needed, and fill the
    /// requester's L2. Returns the added latency.
    fn l3_transaction(&mut self, tile: usize, line: LineAddr, is_write: bool, now: Cycle) -> Cycle {
        let bank = line.bank(self.cfg.l3_banks);
        let hops = u64::from(self.hops(tile, bank));
        self.counts.noc_flit_hops += hops * (self.ctrl_flits + self.data_flits);
        let noc_latency = self
            .cfg
            .link
            .message_latency(hops as u32, self.cfg.link.control_bytes)
            + self.cfg.link.message_latency(hops as u32, self.line_size);
        let l3_stall = self.l3[bank].refresh.access_penalty(now, line.raw());
        let mut beyond = noc_latency + self.cfg.l3_bank.access_latency + l3_stall;
        self.counts.l3_accesses += 1;
        if self.obs.is_enabled() {
            self.obs.record(
                Subsystem::Noc,
                "l3.request",
                now.raw(),
                noc_latency.raw(),
                hops,
            );
            self.obs.record(
                Subsystem::Cache,
                "l3.access",
                now.raw(),
                self.cfg.l3_bank.access_latency.raw(),
                bank as u64,
            );
            if l3_stall > Cycle::ZERO {
                self.obs.record(
                    Subsystem::Refresh,
                    "l3.stall",
                    now.raw(),
                    l3_stall.raw(),
                    bank as u64,
                );
            }
        }

        // Settle the L3 line: it may have been refreshed, written back, or
        // invalidated by the policy since its last touch.
        let mut present = false;
        if let Some(l) = self.l3[bank].cache.line(line).copied() {
            let s = self.l3[bank]
                .refresh
                .settle(line_kind(&l), l.meta.last_touch, now);
            self.counts.l3_refreshes += s.refreshes;
            if s.writeback_at.is_some() {
                self.counts.dram_writes += 1;
                if let Some(lm) = self.l3[bank].cache.line_mut(line) {
                    lm.write_back();
                }
            }
            if s.invalidated_at.is_some() {
                self.policy_invalidate_l3(bank, line, now);
            } else {
                present = true;
            }
        }

        if !present {
            // Fetch the line from DRAM.
            let ready = self.dram.access(line.raw(), DramOp::Read, now + beyond);
            if self.obs.is_enabled() {
                let dram_latency = (ready - now).raw().saturating_sub(beyond.raw());
                self.obs.record(
                    Subsystem::Dram,
                    "dram.fetch",
                    now.raw(),
                    dram_latency,
                    bank as u64,
                );
            }
            beyond = ready - now;
            self.counts.dram_reads += 1;
            if let Some(evicted) = self.l3[bank].cache.fill(line, MesiState::Shared, now) {
                self.handle_l3_eviction(bank, evicted, now);
            }
        } else {
            self.l3[bank].cache.read_hit(line, now);
        }

        // Directory transaction.
        let request = if is_write {
            CoreRequest::Write
        } else {
            CoreRequest::Read
        };
        let outcome = self.protocol.access(&mut self.dir, line, tile, request);

        // Invalidate or downgrade remote holders; their replies are on the
        // critical path of this request.
        let mut worst_remote = Cycle::ZERO;
        let mut remote_messages = 0u64;
        for holder in outcome.invalidate.iter() {
            let d = self.invalidate_private_copy(holder, bank, line, now, true);
            worst_remote = worst_remote.max(d);
            remote_messages += 1;
        }
        if let Some(owner) = outcome.downgrade_owner {
            if !outcome.invalidate.contains(owner) {
                let d =
                    self.downgrade_private_copy(owner, bank, line, now, outcome.owner_writeback);
                worst_remote = worst_remote.max(d);
                remote_messages += 1;
            } else if outcome.owner_writeback {
                // The owner's dirty data lands in the L3 as part of the
                // invalidation handled above.
            }
        }
        // Dragon update broadcasts: the written word is pushed to every
        // remote replica, which stays a valid clean sharer.
        for target in outcome.update.iter() {
            let d = self.update_private_copy(target, bank, line, now);
            worst_remote = worst_remote.max(d);
            remote_messages += 1;
        }
        if worst_remote > Cycle::ZERO {
            self.obs.record(
                Subsystem::Coherence,
                "remote.stall",
                now.raw(),
                worst_remote.raw(),
                remote_messages,
            );
        }
        beyond += worst_remote;

        // Fill (or update) the requester's L2.
        match self.tiles[tile].l2.line(line).copied() {
            Some(_) => {
                self.tiles[tile].l2.set_state(line, outcome.fill_state);
                self.tiles[tile].l2.read_hit(line, now);
            }
            None => {
                if let Some(evicted) = self.tiles[tile].l2.fill(line, outcome.fill_state, now) {
                    self.handle_l2_eviction(tile, evicted, now);
                }
            }
        }

        // Predict when the policy will invalidate this (now freshly touched)
        // L3 line, so the inclusive invalidation happens at the right time.
        self.schedule_l3_invalidation(bank, line, now);
        beyond
    }

    /// Invalidates `holder`'s private copies of `line` on behalf of the
    /// directory; returns the round-trip latency seen from the home bank.
    fn invalidate_private_copy(
        &mut self,
        holder: usize,
        bank: usize,
        line: LineAddr,
        now: Cycle,
        absorb_dirty_into_l3: bool,
    ) -> Cycle {
        let hops = self.hops(bank, holder);
        self.counts.noc_flit_hops += u64::from(hops) * self.ctrl_flits * 2;
        let mut latency = self
            .cfg
            .link
            .message_latency(hops, self.cfg.link.control_bytes)
            * 2;

        self.tiles[holder].dl1.invalidate(line);
        if let Some(victim) = self.tiles[holder].l2.invalidate(line) {
            // Settle the copy's refresh history before it disappears.
            let s = self.tiles[holder].l2_refresh.settle(
                line_kind(&victim),
                victim.meta.last_touch,
                now,
            );
            self.counts.l2_refreshes += s.refreshes;
            if victim.is_dirty() {
                // Dirty data travels back with the acknowledgement.
                self.counts.noc_flit_hops += u64::from(hops) * self.data_flits;
                latency += self.cfg.link.message_latency(hops, self.line_size);
                if absorb_dirty_into_l3 {
                    self.counts.l3_accesses += 1;
                    if let Some(l3_line) = self.l3[bank].cache.line_mut(line) {
                        l3_line.write(now);
                    }
                } else {
                    self.counts.dram_writes += 1;
                }
            }
        }
        latency
    }

    /// Downgrades the owner of `line` on behalf of the directory; returns
    /// the round-trip latency. With `writeback_into_l3` (MESI) the owner's
    /// dirty data lands in the home L3 bank and the owner becomes a clean
    /// sharer. Without it (Dragon) the data is forwarded cache-to-cache
    /// only: a dirty owner keeps its dirty copy in `Sm` and remains
    /// responsible for the eventual write-back.
    fn downgrade_private_copy(
        &mut self,
        owner: usize,
        bank: usize,
        line: LineAddr,
        now: Cycle,
        writeback_into_l3: bool,
    ) -> Cycle {
        let hops = self.hops(bank, owner);
        self.counts.noc_flit_hops += u64::from(hops) * (self.ctrl_flits + self.data_flits);
        let latency = self
            .cfg
            .link
            .message_latency(hops, self.cfg.link.control_bytes)
            + self.cfg.link.message_latency(hops, self.line_size);

        let was_dirty = self.tiles[owner]
            .l2
            .line(line)
            .map(|l| l.is_dirty())
            .unwrap_or(false);
        if writeback_into_l3 {
            self.tiles[owner].l2.set_state(line, MesiState::Shared);
            self.tiles[owner].dl1.set_state(line, MesiState::Shared);
            if was_dirty {
                self.counts.l3_accesses += 1;
                if let Some(l3_line) = self.l3[bank].cache.line_mut(line) {
                    l3_line.write(now);
                }
            }
        } else {
            let l2_state = if was_dirty {
                MesiState::SharedModified
            } else {
                MesiState::Shared
            };
            self.tiles[owner].l2.set_state(line, l2_state);
            self.tiles[owner].dl1.set_state(line, MesiState::Shared);
        }
        latency
    }

    /// Applies a Dragon update to `target`'s private copies of `line`: the
    /// written word is merged in place, so the copies stay valid clean
    /// sharers (a dirty old owner hands its data to the writer cache-to-
    /// cache, with no L3 or DRAM traffic). Rewriting the cells recharges
    /// the line, so its refresh history is settled and its touch reset.
    /// Returns the round-trip latency seen from the home bank.
    fn update_private_copy(
        &mut self,
        target: usize,
        bank: usize,
        line: LineAddr,
        now: Cycle,
    ) -> Cycle {
        let hops = self.hops(bank, target);
        self.counts.noc_flit_hops += u64::from(hops) * self.ctrl_flits * 2;
        let latency = self
            .cfg
            .link
            .message_latency(hops, self.cfg.link.control_bytes)
            * 2;

        if let Some(prev) = self.tiles[target].l2.line(line).copied() {
            let s =
                self.tiles[target]
                    .l2_refresh
                    .settle(line_kind(&prev), prev.meta.last_touch, now);
            self.counts.l2_refreshes += s.refreshes;
            if let Some(l) = self.tiles[target].l2.line_mut(line) {
                l.state = MesiState::Shared;
                l.meta.mark_clean();
                l.meta.touch(now);
            }
        }
        if let Some(l) = self.tiles[target].dl1.line_mut(line) {
            l.state = MesiState::Shared;
            l.meta.mark_clean();
            l.meta.touch(now);
        }
        latency
    }

    /// Handles the eviction of a (valid) line from a private L2: maintain
    /// DL1 inclusion and write dirty data back to the home L3 bank.
    fn handle_l2_eviction(
        &mut self,
        tile: usize,
        evicted: refrint_mem::cache::EvictedLine,
        now: Cycle,
    ) {
        let line = evicted.line.addr;
        let s = self.tiles[tile].l2_refresh.settle(
            line_kind(&evicted.line),
            evicted.line.meta.last_touch,
            now,
        );
        self.counts.l2_refreshes += s.refreshes;
        self.tiles[tile].dl1.invalidate(line);

        let bank = line.bank(self.cfg.l3_banks);
        let hops = self.hops(tile, bank);
        if evicted.needs_writeback() {
            self.counts.noc_flit_hops += u64::from(hops) * self.data_flits;
            self.counts.l3_accesses += 1;
            if let Some(l3_line) = self.l3[bank].cache.line_mut(line) {
                l3_line.write(now);
                self.schedule_l3_invalidation(bank, line, now);
            } else {
                // The L3 copy is already gone (decayed); the data goes to
                // memory directly.
                self.counts.dram_writes += 1;
            }
            let _ = self
                .protocol
                .access(&mut self.dir, line, tile, CoreRequest::EvictDirty);
        } else {
            self.counts.noc_flit_hops += u64::from(hops) * self.ctrl_flits;
            let _ = self
                .protocol
                .access(&mut self.dir, line, tile, CoreRequest::EvictClean);
        }
    }

    /// Handles the eviction of a valid line from an L3 bank: settle its
    /// refresh history, invalidate every private copy (inclusivity) and write
    /// dirty data to DRAM.
    fn handle_l3_eviction(
        &mut self,
        bank: usize,
        evicted: refrint_mem::cache::EvictedLine,
        now: Cycle,
    ) {
        let line = evicted.line.addr;
        let s = self.l3[bank].refresh.settle(
            line_kind(&evicted.line),
            evicted.line.meta.last_touch,
            now,
        );
        self.counts.l3_refreshes += s.refreshes;
        // If the policy already wrote the line back (or invalidated it), the
        // eviction costs less.
        let mut still_dirty = evicted.line.is_dirty();
        if s.writeback_at.is_some() {
            self.counts.dram_writes += 1;
            still_dirty = false;
        }
        let already_gone = s.invalidated_at.is_some();

        let (holders, _had_owner) = self.protocol.invalidate_all(&mut self.dir, line);
        for holder in holders.iter() {
            let hops = self.hops(bank, holder);
            self.counts.noc_flit_hops += u64::from(hops) * self.ctrl_flits * 2;
            self.tiles[holder].dl1.invalidate(line);
            if let Some(victim) = self.tiles[holder].l2.invalidate(line) {
                let sv = self.tiles[holder].l2_refresh.settle(
                    line_kind(&victim),
                    victim.meta.last_touch,
                    now,
                );
                self.counts.l2_refreshes += sv.refreshes;
                if victim.is_dirty() {
                    self.counts.dram_writes += 1;
                    self.counts.noc_flit_hops += u64::from(hops) * self.data_flits;
                }
            }
        }
        if !already_gone && still_dirty {
            self.counts.dram_writes += 1;
        }
    }

    /// A policy-driven invalidation of an L3 line (its refresh budget ran
    /// out): invalidate it and, through inclusion, every private copy.
    fn policy_invalidate_l3(&mut self, bank: usize, line: LineAddr, now: Cycle) {
        let Some(removed) = self.l3[bank].cache.invalidate(line) else {
            return;
        };
        self.obs.record(
            Subsystem::Refresh,
            "policy.invalidate",
            now.raw(),
            0,
            bank as u64,
        );
        debug_assert!(
            !removed.is_dirty() || self.l3[bank].refresh.model().is_none(),
            "the WB/Dirty policies only invalidate clean lines"
        );
        let (holders, _had_owner) = self.protocol.invalidate_all(&mut self.dir, line);
        for holder in holders.iter() {
            let hops = self.hops(bank, holder);
            self.counts.noc_flit_hops += u64::from(hops) * self.ctrl_flits * 2;
            self.tiles[holder].dl1.invalidate(line);
            if let Some(victim) = self.tiles[holder].l2.invalidate(line) {
                let sv = self.tiles[holder].l2_refresh.settle(
                    line_kind(&victim),
                    victim.meta.last_touch,
                    now,
                );
                self.counts.l2_refreshes += sv.refreshes;
                if victim.is_dirty() {
                    // The L3 backing copy is being dropped, so the dirty
                    // private data must go to memory.
                    self.counts.dram_writes += 1;
                    self.counts.noc_flit_hops += u64::from(hops) * self.data_flits;
                }
            }
        }
    }

    /// Schedules the eager policy-invalidation check for an L3 line that was
    /// just touched at `now`.
    fn schedule_l3_invalidation(&mut self, bank: usize, line: LineAddr, now: Cycle) {
        let Some(l3_line) = self.l3[bank].cache.line(line).copied() else {
            return;
        };
        let kind = line_kind(&l3_line);
        if let Some(when) = self.l3[bank].refresh.invalidation_time(kind, now) {
            self.invalidations.schedule(
                when,
                PendingInvalidation {
                    bank,
                    line,
                    touch: now,
                },
            );
        }
    }

    /// Processes every pending invalidation whose time has come.
    fn drain_invalidations(&mut self, now: Cycle) {
        while self.invalidations.peek_time().is_some_and(|t| t <= now) {
            let ev = self.invalidations.pop().expect("peeked event exists");
            let PendingInvalidation { bank, line, touch } = ev.event;
            let Some(current) = self.l3[bank].cache.line(line).copied() else {
                continue;
            };
            if !current.is_valid() || current.meta.last_touch != touch {
                continue; // stale prediction: the line was touched again
            }
            let s = self.l3[bank]
                .refresh
                .settle(line_kind(&current), touch, ev.at);
            self.counts.l3_refreshes += s.refreshes;
            if s.refreshes > 0 {
                self.obs.record(
                    Subsystem::Refresh,
                    "settle.drain",
                    ev.at.raw(),
                    0,
                    s.refreshes,
                );
            }
            if s.writeback_at.is_some() {
                self.counts.dram_writes += 1;
                self.obs.record(
                    Subsystem::Dram,
                    "dram.writeback",
                    ev.at.raw(),
                    0,
                    bank as u64,
                );
                if let Some(lm) = self.l3[bank].cache.line_mut(line) {
                    lm.write_back();
                }
            }
            if s.invalidated_at.is_some() {
                self.policy_invalidate_l3(bank, line, ev.at);
            }
        }
    }

    // ----------------------------------------------------------------- //
    // End of run
    // ----------------------------------------------------------------- //

    /// Settles every resident line at the end of the run, flushes dirty data
    /// to DRAM (as the paper's methodology requires) and adds bulk refresh
    /// counts for the `All` policy and the statistically-modelled IL1.
    fn finalize(&mut self, end: Cycle) {
        self.drain_invalidations(end);
        let refreshes_before = self.counts.total_refreshes();

        // One system-owned snapshot buffer serves every per-cache sweep
        // below (taken out of `self` so the loops can borrow the system
        // mutably while reading the snapshot).
        let mut snapshot = std::mem::take(&mut self.scratch_lines);

        // Shared L3 banks.
        for bank in 0..self.l3.len() {
            self.l3[bank].cache.collect_valid_into(&mut snapshot);
            for l in &snapshot {
                let s = self.l3[bank]
                    .refresh
                    .settle(line_kind(l), l.meta.last_touch, end);
                self.counts.l3_refreshes += s.refreshes;
                if s.writeback_at.is_some() {
                    self.counts.dram_writes += 1;
                } else if l.is_dirty() && s.invalidated_at.is_none() {
                    // End-of-run flush of dirty data.
                    self.counts.dram_writes += 1;
                }
            }
            if self.l3[bank].refresh.is_bulk_all() {
                self.counts.l3_refreshes += self.l3[bank].refresh.bulk_refreshes(end);
            }
        }

        // Private caches.
        for tile in 0..self.tiles.len() {
            self.tiles[tile].l2.collect_valid_into(&mut snapshot);
            for l in &snapshot {
                let s = self.tiles[tile]
                    .l2_refresh
                    .settle(line_kind(l), l.meta.last_touch, end);
                self.counts.l2_refreshes += s.refreshes;
                if l.is_dirty() {
                    self.counts.dram_writes += 1;
                }
            }
            self.tiles[tile].dl1.collect_valid_into(&mut snapshot);
            for l in &snapshot {
                let s = self.tiles[tile]
                    .dl1_refresh
                    .settle(line_kind(l), l.meta.last_touch, end);
                self.counts.l1_refreshes += s.refreshes;
            }
            // The IL1 is modelled statistically: under Periodic timing every
            // line is refreshed every period; under Refrint its (hot) lines
            // are recharged by fetches and contribute negligibly.
            if self.tiles[tile].dl1_refresh.is_edram() && self.cfg.is_periodic() {
                let il1_lines = self.cfg.il1.geometry.num_lines();
                let periods = end.div_span(self.cfg.retention.line_retention_cycles());
                self.counts.l1_refreshes += il1_lines * periods;
            }
        }

        self.scratch_lines = snapshot;
        self.counts.cycles = end.raw();
        self.obs.record(
            Subsystem::Refresh,
            "settle.finalize",
            end.raw(),
            0,
            self.counts.total_refreshes() - refreshes_before,
        );
    }

    fn collect_stats(&self) -> StatRegistry {
        let mut out = StatRegistry::new();
        for (t, tile) in self.tiles.iter().enumerate() {
            for (k, v) in tile.dl1.stats().iter() {
                out.add(&format!("dl1.{t}.{k}"), v);
            }
            for (k, v) in tile.l2.stats().iter() {
                out.add(&format!("l2.{t}.{k}"), v);
            }
        }
        for (b, bank) in self.l3.iter().enumerate() {
            for (k, v) in bank.cache.stats().iter() {
                out.add(&format!("l3.{b}.{k}"), v);
            }
        }
        for (k, v) in self.protocol.stats().iter() {
            out.add(&format!("coherence.{k}"), v);
        }
        for (k, v) in self.dram.stats().iter() {
            out.add(&format!("dram.{k}"), v);
        }
        // Count the domains actually running sentry-interrupt (Refrint-style)
        // refresh, consulting the bound models rather than the descriptor so
        // custom L3 policy models are reported correctly.
        let sentry = |d: &RefreshDomain| u64::from(d.is_edram() && !d.is_globally_bursting());
        let sentry_domains = self
            .tiles
            .iter()
            .map(|t| sentry(&t.dl1_refresh) + sentry(&t.l2_refresh))
            .sum::<u64>()
            + self.l3.iter().map(|b| sentry(&b.refresh)).sum::<u64>();
        if sentry_domains > 0 {
            out.add("refresh.refrint_domains", sentry_domains);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
    use refrint_edram::retention::RetentionConfig;
    use refrint_energy::tech::CellTech;

    fn small(cells: CellTech, policy: RefreshPolicy) -> SimReport {
        let cfg = SystemConfig::sram_baseline()
            .with_cells(cells)
            .with_policy(policy)
            .with_retention(RetentionConfig::microseconds_50())
            .with_scale(3_000)
            .with_seed(11);
        let mut sys = CmpSystem::new(cfg).unwrap();
        sys.run_app(AppPreset::Lu)
    }

    #[test]
    fn sram_run_produces_consistent_counts() {
        let r = small(CellTech::Sram, RefreshPolicy::recommended());
        assert!(r.execution_cycles > 0);
        assert_eq!(r.counts.total_refreshes(), 0, "SRAM never refreshes");
        assert_eq!(r.counts.dl1_accesses, 16 * 3_000);
        assert!(r.counts.l2_accesses > 0);
        assert!(r.counts.l3_accesses > 0);
        assert!(r.counts.instructions >= r.counts.dl1_accesses);
        assert!(r.breakdown.is_physical());
        assert!(r.breakdown.refresh_total() == 0.0);
    }

    #[test]
    fn edram_refreshes_and_uses_less_leakage_than_sram() {
        let sram = small(CellTech::Sram, RefreshPolicy::recommended());
        let edram = small(
            CellTech::Edram,
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
        );
        assert!(edram.counts.total_refreshes() > 0);
        // Same workload, so dynamic energy is very similar; leakage shrinks.
        assert!(edram.breakdown.on_chip_leakage() < sram.breakdown.on_chip_leakage());
    }

    #[test]
    fn periodic_all_is_slower_and_refreshes_more_than_refrint_valid() {
        let p_all = small(CellTech::Edram, RefreshPolicy::edram_baseline());
        let r_valid = small(
            CellTech::Edram,
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
        );
        assert!(
            p_all.execution_cycles > r_valid.execution_cycles,
            "periodic blocking must slow execution ({} vs {})",
            p_all.execution_cycles,
            r_valid.execution_cycles
        );
        assert!(
            p_all.counts.total_refreshes() > r_valid.counts.total_refreshes(),
            "Periodic All refreshes every line every period"
        );
    }

    #[test]
    fn aggressive_wb_creates_dram_traffic() {
        let conservative = small(
            CellTech::Edram,
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
        );
        let aggressive = small(
            CellTech::Edram,
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(0, 0)),
        );
        assert!(
            aggressive.counts.dram_accesses() > conservative.counts.dram_accesses(),
            "WB(0,0) must push more traffic to DRAM ({} vs {})",
            aggressive.counts.dram_accesses(),
            conservative.counts.dram_accesses()
        );
        assert!(
            aggressive.counts.l3_refreshes < conservative.counts.l3_refreshes,
            "WB(0,0) must refresh less than Valid"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = small(CellTech::Edram, RefreshPolicy::recommended());
        let b = small(CellTech::Edram, RefreshPolicy::recommended());
        assert_eq!(a.execution_cycles, b.execution_cycles);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn small_core_count_configuration_works() {
        let cfg = SystemConfig::edram_recommended()
            .with_cores(4)
            .with_scale(2_000);
        let mut sys = CmpSystem::new(cfg).unwrap();
        let r = sys.run_app(AppPreset::Barnes);
        assert_eq!(r.counts.dl1_accesses, 4 * 2_000);
        assert!(r.execution_cycles > 0);
    }

    #[test]
    fn dragon_runs_update_traffic_instead_of_invalidations() {
        use refrint_coherence::protocol::CoherenceProtocol;
        let base = SystemConfig::edram_recommended()
            .with_cores(4)
            .with_scale(3_000)
            .with_seed(11);
        let mut mesi = CmpSystem::new(base.clone()).unwrap();
        let rm = mesi.run_app(AppPreset::Radix);
        let mut dragon = CmpSystem::new(base.with_protocol(CoherenceProtocol::Dragon)).unwrap();
        let rd = dragon.run_app(AppPreset::Radix);
        assert!(rd.execution_cycles > 0);
        assert_eq!(rd.stats.get("coherence.invalidations_sent"), 0);
        assert!(
            rd.stats.get("coherence.updates_sent") > 0,
            "a sharing workload must broadcast updates under Dragon"
        );
        assert!(rm.stats.get("coherence.updates_sent") == 0);
        // Same workload traffic either way.
        assert_eq!(rm.counts.dl1_accesses, rd.counts.dl1_accesses);
        // Dragon is deterministic too.
        let mut again = CmpSystem::new(
            SystemConfig::edram_recommended()
                .with_cores(4)
                .with_scale(3_000)
                .with_seed(11)
                .with_protocol(CoherenceProtocol::Dragon),
        )
        .unwrap();
        let rd2 = again.run_app(AppPreset::Radix);
        assert_eq!(rd.execution_cycles, rd2.execution_cycles);
        assert_eq!(rd.counts, rd2.counts);
    }

    #[test]
    fn retention_profile_changes_refresh_behaviour_deterministically() {
        use refrint_edram::variation::RetentionProfile;
        let base = SystemConfig::edram_recommended()
            .with_cores(4)
            .with_scale(3_000)
            .with_seed(11);
        let uniform = {
            let mut sys = CmpSystem::new(base.clone()).unwrap();
            sys.run_app(AppPreset::Lu)
        };
        let profile = RetentionProfile::Bimodal {
            weak_pct: 50,
            weak_retention_pct: 40,
        };
        let varied = {
            let mut sys = CmpSystem::new(base.clone().with_retention_profile(profile)).unwrap();
            sys.run_app(AppPreset::Lu)
        };
        // Weak banks refresh more often than nominal ones.
        assert!(
            varied.counts.l3_refreshes > uniform.counts.l3_refreshes,
            "weak banks must raise the refresh count ({} vs {})",
            varied.counts.l3_refreshes,
            uniform.counts.l3_refreshes
        );
        let varied_again = {
            let mut sys = CmpSystem::new(base.with_retention_profile(profile)).unwrap();
            sys.run_app(AppPreset::Lu)
        };
        assert_eq!(varied.counts, varied_again.counts);
        assert_eq!(varied.execution_cycles, varied_again.execution_cycles);
    }
}
