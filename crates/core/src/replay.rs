//! Trace capture and replay glue between `refrint-trace` and the system
//! simulator.
//!
//! Capture writes exactly the reference streams [`CmpSystem::run_model`]
//! would feed the system (threads pinned to the core count, length scaled
//! by the configured override), so replaying the trace through the same
//! configuration reproduces the live run's [`SimReport`] bit for bit —
//! the common [`CmpSystem::run_streams`] driver guarantees the same
//! interleaving for the same per-thread streams.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use refrint_trace::{
    capture_model, TextTraceWriter, ThreadRefs, TraceError, TraceFile, TraceFormat, TraceMeta,
    TraceWriter,
};
use refrint_workloads::model::WorkloadModel;
use refrint_workloads::trace::MemRef;

use crate::config::SystemConfig;
use crate::error::RefrintError;
use crate::report::SimReport;
use crate::system::CmpSystem;

/// Captures the streams `config` would run for `model` into `path`, in the
/// given on-disk format. Returns the written trace's metadata.
///
/// # Errors
///
/// [`RefrintError::InvalidConfig`] for an invalid configuration,
/// [`RefrintError::Trace`] for trace-level failures (I/O, invalid model).
pub fn capture_to_path(
    config: &SystemConfig,
    model: &WorkloadModel,
    path: impl AsRef<Path>,
    format: TraceFormat,
) -> Result<TraceMeta, RefrintError> {
    config.validate()?;
    let model = config.adjusted_model(model);
    let meta = TraceMeta::new(&model.name, model.threads, config.seed);
    match format {
        TraceFormat::Binary => {
            let mut writer = TraceWriter::create(path, &meta)?;
            capture_model(&model, config.seed, &mut writer)?;
        }
        TraceFormat::Text => {
            let mut writer = TextTraceWriter::create(path, &meta)?;
            capture_model(&model, config.seed, &mut writer)?;
        }
    }
    Ok(meta)
}

/// A per-thread trace cursor that parks the first decode error in a shared
/// cell (ending its stream) instead of panicking; [`replay`] checks the
/// cell after the run and turns a poisoned run into an error.
struct CheckedRefs {
    inner: ThreadRefs,
    error: Rc<RefCell<Option<TraceError>>>,
}

impl Iterator for CheckedRefs {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        match self.inner.next() {
            Some(Ok(r)) => Some(r),
            Some(Err(e)) => {
                self.error.borrow_mut().get_or_insert(e);
                None
            }
            None => None,
        }
    }
}

/// Replays an opened trace through `system` and returns the report — for a
/// trace captured from the same configuration, identical to the live run's.
///
/// # Errors
///
/// [`RefrintError::Trace`] if the trace's thread count differs from the
/// system's core count, or if any record fails to decode (the partial run
/// is discarded).
pub fn replay(system: &mut CmpSystem, trace: &TraceFile) -> Result<SimReport, RefrintError> {
    let meta = trace.meta().clone();
    let cores = system.config().cores;
    if meta.threads != cores {
        return Err(RefrintError::Trace {
            reason: format!(
                "trace `{}` has {} threads but the system has {cores} cores \
                 (configure `.cores({})` to replay it)",
                meta.workload, meta.threads, meta.threads
            ),
        });
    }
    let error: Rc<RefCell<Option<TraceError>>> = Rc::new(RefCell::new(None));
    let streams = (0..meta.threads)
        .map(|t| {
            Ok(CheckedRefs {
                inner: trace.thread(t)?,
                error: Rc::clone(&error),
            })
        })
        .collect::<Result<Vec<_>, TraceError>>()?;
    let report = system.run_streams(&meta.workload, streams)?;
    if let Some(e) = error.borrow_mut().take() {
        return Err(e.into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_workloads::apps::AppPreset;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("refrint-replay-{}-{name}", std::process::id()))
    }

    fn config() -> SystemConfig {
        SystemConfig::edram_recommended()
            .with_cores(2)
            .with_scale(800)
            .with_seed(13)
    }

    #[test]
    fn capture_then_replay_reproduces_the_live_report() {
        let path = tmp("roundtrip.rft");
        let meta = capture_to_path(
            &config(),
            &AppPreset::Lu.model(),
            &path,
            TraceFormat::Binary,
        )
        .unwrap();
        assert_eq!(meta.threads, 2);
        assert_eq!(meta.workload, "lu");

        let live = CmpSystem::new(config()).unwrap().run_app(AppPreset::Lu);
        let trace = TraceFile::open(&path).unwrap();
        let replayed = replay(&mut CmpSystem::new(config()).unwrap(), &trace).unwrap();
        assert_eq!(format!("{live:?}"), format!("{replayed:?}"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn thread_core_mismatch_is_a_typed_error() {
        let path = tmp("mismatch.rft");
        capture_to_path(
            &config(),
            &AppPreset::Fft.model(),
            &path,
            TraceFormat::Binary,
        )
        .unwrap();
        let trace = TraceFile::open(&path).unwrap();
        let four_cores = SystemConfig::edram_recommended().with_cores(4);
        let err = replay(&mut CmpSystem::new(four_cores).unwrap(), &trace).unwrap_err();
        match err {
            RefrintError::Trace { reason } => {
                assert!(reason.contains("2 threads"), "{reason}");
                assert!(reason.contains("4 cores"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
