//! Refrint: intelligent refresh for full-eDRAM multiprocessor cache
//! hierarchies.
//!
//! This crate is the top of the workspace: it assembles the substrates
//! (caches, directory MESI coherence, torus NoC, eDRAM refresh policies,
//! energy model, synthetic workloads) into the 16-core chip multiprocessor of
//! the paper's Table 5.1, runs 16-threaded workloads through it, and
//! regenerates the paper's evaluation artefacts.
//!
//! # Architecture
//!
//! ```text
//!  core 0..15 ──► private DL1 (WT) ──► private L2 (WB) ──┐
//!                                                        │  4x4 torus
//!                  shared L3, 16 banks, directory MESI ◄─┘
//!                                │
//!                              DRAM
//! ```
//!
//! Every cache can be built from SRAM (baseline: no refresh, full leakage) or
//! eDRAM (quarter leakage, needs refresh). For eDRAM, the refresh behaviour
//! is governed by a [`refrint_edram::policy::RefreshPolicy`]: `Periodic` or
//! `Refrint` timing combined with `All` / `Valid` / `Dirty` / `WB(n,m)` data
//! policies. The L1/L2 always run the `Valid` data policy, as in the paper's
//! evaluation (Section 6.2); the swept data policy applies to the L3.
//!
//! # Quickstart
//!
//! All entry points go through [`Simulation::builder`]: pick a preset,
//! layer overrides, `build()` (typed validation errors), `run()`:
//!
//! ```
//! use refrint::prelude::*;
//!
//! // A deliberately small run so the doctest is fast.
//! let mut simulation = Simulation::builder()
//!     .edram_recommended()
//!     .refs_per_thread(2_000)
//!     .build()
//!     .unwrap();
//! let outcome = simulation.run(AppPreset::Blackscholes);
//! assert!(outcome.execution_cycles() > 0);
//! assert!(outcome.breakdown().memory_total() > 0.0);
//! ```
//!
//! Custom refresh policies plug in without forking the simulator: implement
//! [`refrint_edram::model::RefreshPolicyModel`] (+ a
//! [`refrint_edram::model::PolicyFactory`]) and pass it to
//! [`SimulationBuilder::policy_model`] or register its label with
//! [`SimulationBuilder::register_policy`].
//!
//! The [`experiment`] module describes the paper's 42 + 1 configuration
//! sweep (Table 5.4); the [`sweep`] module runs it across worker threads
//! ([`SweepRunner`]) with [`ProgressObserver`] streaming and a merge that is
//! deterministic for every worker count; and the [`figures`] module turns
//! sweep results into the rows of Figures 6.1–6.4 and Table 6.1.
//!
//! # Trace capture & replay
//!
//! Any workload can be recorded to a compact trace file
//! ([`Simulation::capture`], crate `refrint-trace`) and replayed
//! bit-for-bit — the replayed [`SimReport`] is identical to the live
//! run's — through [`SimulationBuilder::trace`] + [`Simulation::replay`],
//! on this machine or another. Traces also join sweeps alongside the
//! presets via [`ExperimentConfig`]'s `traces` ([`TraceSpec`]); see the
//! [`replay`] module for the glue and `refrint-trace` for the format
//! specification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anomaly;
pub mod config;
pub mod cpu;
pub mod error;
pub mod experiment;
pub mod figures;
pub mod hierarchy;
pub mod json;
pub mod replay;
pub mod report;
pub mod simulation;
pub mod sweep;
pub mod system;

pub use anomaly::SweepAnomaly;
pub use config::SystemConfig;
pub use error::RefrintError;
pub use experiment::{ExperimentConfig, SweepResults, TraceSpec};
pub use refrint_coherence::protocol::CoherenceProtocol;
pub use refrint_edram::variation::RetentionProfile;
pub use report::SimReport;
pub use simulation::{
    BuildError, ObsConfig, ObsSummary, RelativeMetrics, RunOutcome, Simulation, SimulationBuilder,
};
pub use sweep::{ProgressObserver, SweepProgress, SweepRunner};
pub use system::CmpSystem;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::config::SystemConfig;
    pub use crate::experiment::{ExperimentConfig, SweepResults, TraceSpec};
    pub use crate::report::SimReport;
    pub use crate::simulation::{BuildError, RunOutcome, Simulation, SimulationBuilder};
    pub use crate::sweep::{ProgressObserver, SweepProgress, SweepRunner};
    pub use crate::system::CmpSystem;
    pub use refrint_coherence::protocol::CoherenceProtocol;
    pub use refrint_edram::model::{
        PolicyBinding, PolicyFactory, PolicyRegistry, RefreshAction, RefreshPolicyModel,
    };
    pub use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
    pub use refrint_edram::retention::RetentionConfig;
    pub use refrint_edram::schedule::LineKind;
    pub use refrint_edram::variation::RetentionProfile;
    pub use refrint_energy::tech::CellTech;
    pub use refrint_trace::{TraceError, TraceFile, TraceFormat, TraceMeta, TraceSummary};
    pub use refrint_workloads::apps::AppPreset;
    pub use refrint_workloads::classify::AppClass;
}
