//! Execution-time costs of refreshing: periodic group bursts and Refrint
//! interrupt contention.
//!
//! The paper attributes the 18% slowdown of the naive `Periodic All` eDRAM
//! baseline to the cache being unavailable while groups of lines are being
//! refreshed, and the near-zero slowdown of Refrint to its highly staggered,
//! one-line-per-cycle interrupt servicing (Sections 3.2, 4.2 and 6.5). This
//! module provides the two corresponding timing models:
//!
//! * [`PeriodicBurstModel`] — each refresh period, every group (sub-array) of
//!   the cache is refreshed as a contiguous burst of one cycle per line;
//!   bursts are staggered evenly across the period. An access that arrives
//!   while a burst is in progress waits for the burst to finish.
//! * [`RefrintContention`] — sentry interrupts take priority over plain
//!   read/write requests, but are serialised one per cycle by the priority
//!   encoder, so an access at most waits for the interrupts currently
//!   pending. We model this with a deterministic utilisation accumulator.

use refrint_engine::time::Cycle;

/// Blocking model for the Periodic time policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicBurstModel {
    retention: Cycle,
    groups: u64,
    lines_per_group: u64,
}

impl PeriodicBurstModel {
    /// Creates a burst model for a cache with `groups` refresh groups of
    /// `lines_per_group` lines, refreshed once per `retention`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or if the total refresh work per
    /// period exceeds the period itself (the cache could never keep up).
    #[must_use]
    pub fn new(retention: Cycle, groups: u64, lines_per_group: u64) -> Self {
        assert!(retention > Cycle::ZERO, "retention must be non-zero");
        assert!(
            groups > 0 && lines_per_group > 0,
            "groups and lines must be non-zero"
        );
        assert!(
            groups * lines_per_group <= retention.raw(),
            "refresh work per period ({} cycles) exceeds the period ({})",
            groups * lines_per_group,
            retention
        );
        PeriodicBurstModel {
            retention,
            groups,
            lines_per_group,
        }
    }

    /// The spacing between the starts of consecutive group bursts.
    #[must_use]
    pub fn burst_spacing(&self) -> Cycle {
        self.retention / self.groups
    }

    /// Duration of one group burst (one cycle per line).
    #[must_use]
    pub fn burst_length(&self) -> Cycle {
        Cycle::new(self.lines_per_group)
    }

    /// The fraction of time the cache is blocked by refresh bursts.
    #[must_use]
    pub fn blocked_fraction(&self) -> f64 {
        (self.groups * self.lines_per_group) as f64 / self.retention.raw() as f64
    }

    /// If an access arrives at `now` while a burst is in progress, returns
    /// the extra delay until the burst completes; otherwise zero.
    ///
    /// This is the most conservative reading of the paper's "renders the
    /// cache unavailable" argument: the whole cache blocks during a group
    /// burst. The system simulator uses the sub-array-targeted
    /// [`PeriodicBurstModel::access_delay_for_line`] instead, where only
    /// accesses that map to the sub-array currently being refreshed stall.
    #[must_use]
    pub fn access_delay(&self, now: Cycle) -> Cycle {
        let phase = now % self.burst_spacing();
        let burst = self.burst_length();
        if phase < burst {
            burst - phase
        } else {
            Cycle::ZERO
        }
    }

    /// The group (sub-array) being refreshed at `now`, if a burst is in
    /// progress.
    #[must_use]
    pub fn group_in_refresh(&self, now: Cycle) -> Option<u64> {
        let spacing = self.burst_spacing();
        let phase = now % spacing;
        if phase < self.burst_length() {
            Some((now % self.retention).div_span(spacing) % self.groups)
        } else {
            None
        }
    }

    /// Stall seen by an access to the line whose sub-array index is
    /// `line_group` (`line address mod groups`): it waits only if its own
    /// sub-array is the one currently being refreshed.
    #[must_use]
    pub fn access_delay_for_line(&self, now: Cycle, line_group: u64) -> Cycle {
        match self.group_in_refresh(now) {
            Some(busy) if busy == line_group % self.groups => {
                self.burst_length() - (now % self.burst_spacing())
            }
            _ => Cycle::ZERO,
        }
    }

    /// Like [`PeriodicBurstModel::access_delay_for_line`], but the wait is
    /// capped at `preemption_window` cycles: the refresh engine yields to a
    /// pending demand access after at most that many line refreshes and then
    /// resumes the burst. This is the model the system simulator uses; the
    /// uncapped variants above are the most pessimistic readings and are kept
    /// for the ablation benches.
    #[must_use]
    pub fn access_delay_preemptible(
        &self,
        now: Cycle,
        line_group: u64,
        preemption_window: Cycle,
    ) -> Cycle {
        self.access_delay_for_line(now, line_group)
            .min(preemption_window)
    }

    /// Total number of line refreshes performed by the periodic engine over
    /// `window` cycles (every line, every period — the naive baseline's
    /// refresh count, independent of the data policy's extra actions).
    #[must_use]
    pub fn refreshes_in(&self, window: Cycle) -> u64 {
        let lines = self.groups * self.lines_per_group;
        lines * window.div_span(self.retention)
    }
}

/// Contention model for Refrint sentry interrupts.
///
/// Sentry interrupts are serviced one line per cycle with priority over plain
/// requests. The expected number of pending interrupts when an access arrives
/// equals the refresh utilisation of the cache (refreshes per cycle), which is
/// far below one for realistic retention times. We accumulate that utilisation
/// deterministically and charge a whole stall cycle each time it reaches one,
/// so long simulations converge to the expected penalty without randomness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RefrintContention {
    accumulated: f64,
    total_stalls: u64,
}

impl RefrintContention {
    /// Creates a contention accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `refreshes` interrupt services occurred somewhere in a
    /// window of `window` cycles, and returns the stall cycles to charge to
    /// the access that observed them.
    pub fn charge(&mut self, refreshes: u64, window: Cycle) -> Cycle {
        if window == Cycle::ZERO || refreshes == 0 {
            return Cycle::ZERO;
        }
        // An access overlaps a 1-cycle interrupt service with probability
        // `refreshes / window`; accumulate and emit whole cycles.
        self.accumulated += refreshes as f64 / window.raw() as f64;
        if self.accumulated >= 1.0 {
            let whole = self.accumulated.floor();
            self.accumulated -= whole;
            let stalls = whole as u64;
            self.total_stalls += stalls;
            Cycle::new(stalls)
        } else {
            Cycle::ZERO
        }
    }

    /// Total stall cycles charged so far.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.total_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_blocking_fraction_at_50us() {
        // DL1: 4 groups of 128 lines, 50_000-cycle retention.
        let m = PeriodicBurstModel::new(Cycle::new(50_000), 4, 128);
        assert!((m.blocked_fraction() - 512.0 / 50_000.0).abs() < 1e-12);
        assert_eq!(m.burst_spacing(), Cycle::new(12_500));
        assert_eq!(m.burst_length(), Cycle::new(128));
    }

    #[test]
    fn access_delay_inside_and_outside_bursts() {
        let m = PeriodicBurstModel::new(Cycle::new(1_000), 2, 100);
        // Burst spacing 500, burst length 100. At cycle 0 a burst starts.
        assert_eq!(m.access_delay(Cycle::new(0)), Cycle::new(100));
        assert_eq!(m.access_delay(Cycle::new(40)), Cycle::new(60));
        assert_eq!(m.access_delay(Cycle::new(99)), Cycle::new(1));
        assert_eq!(m.access_delay(Cycle::new(100)), Cycle::ZERO);
        assert_eq!(m.access_delay(Cycle::new(499)), Cycle::ZERO);
        // Second burst starts at 500.
        assert_eq!(m.access_delay(Cycle::new(500)), Cycle::new(100));
        assert_eq!(m.access_delay(Cycle::new(560)), Cycle::new(40));
        // Next period.
        assert_eq!(m.access_delay(Cycle::new(1000)), Cycle::new(100));
    }

    #[test]
    fn average_delay_matches_expectation() {
        let m = PeriodicBurstModel::new(Cycle::new(10_000), 4, 250);
        let total: u64 = (0..10_000u64)
            .map(|c| m.access_delay(Cycle::new(c)).raw())
            .sum();
        let avg = total as f64 / 10_000.0;
        // Expected: blocked fraction 0.1, mean residual wait ~ (250+1)/2 within
        // a burst -> average over all cycles ~ 12.5.
        assert!((avg - 12.5).abs() < 0.5, "avg = {avg}");
    }

    #[test]
    fn group_targeted_delay_only_hits_the_busy_subarray() {
        let m = PeriodicBurstModel::new(Cycle::new(1_000), 2, 100);
        // Burst 0 runs over cycles 0..100, burst 1 over 500..600.
        assert_eq!(m.group_in_refresh(Cycle::new(50)), Some(0));
        assert_eq!(m.group_in_refresh(Cycle::new(550)), Some(1));
        assert_eq!(m.group_in_refresh(Cycle::new(300)), None);
        // An access to group 0 at cycle 40 waits; group 1 does not.
        assert_eq!(m.access_delay_for_line(Cycle::new(40), 0), Cycle::new(60));
        assert_eq!(m.access_delay_for_line(Cycle::new(40), 1), Cycle::ZERO);
        // And vice versa during the second burst.
        assert_eq!(m.access_delay_for_line(Cycle::new(520), 1), Cycle::new(80));
        assert_eq!(m.access_delay_for_line(Cycle::new(520), 0), Cycle::ZERO);
        // Outside any burst nobody waits.
        assert_eq!(m.access_delay_for_line(Cycle::new(300), 0), Cycle::ZERO);
    }

    #[test]
    fn preemptible_delay_is_capped() {
        let m = PeriodicBurstModel::new(Cycle::new(50_000), 4, 4096);
        // At cycle 0 sub-array 0's burst has 4096 cycles left, but a demand
        // access only waits for the preemption window.
        assert_eq!(
            m.access_delay_preemptible(Cycle::ZERO, 0, Cycle::new(256)),
            Cycle::new(256)
        );
        // Near the end of the burst the true remaining time is shorter than
        // the window, so the smaller value wins.
        assert_eq!(
            m.access_delay_preemptible(Cycle::new(4_000), 0, Cycle::new(256)),
            Cycle::new(96)
        );
        // Other sub-arrays never wait.
        assert_eq!(
            m.access_delay_preemptible(Cycle::ZERO, 1, Cycle::new(256)),
            Cycle::ZERO
        );
    }

    #[test]
    fn group_targeted_delay_is_never_larger_than_whole_cache_delay() {
        let m = PeriodicBurstModel::new(Cycle::new(10_000), 4, 250);
        for c in 0..10_000u64 {
            for g in 0..4u64 {
                assert!(m.access_delay_for_line(Cycle::new(c), g) <= m.access_delay(Cycle::new(c)));
            }
        }
    }

    #[test]
    fn refreshes_in_window() {
        let m = PeriodicBurstModel::new(Cycle::new(1_000), 4, 100);
        assert_eq!(m.refreshes_in(Cycle::new(10_000)), 400 * 10);
        assert_eq!(m.refreshes_in(Cycle::new(999)), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the period")]
    fn overcommitted_refresh_panics() {
        let _ = PeriodicBurstModel::new(Cycle::new(100), 4, 100);
    }

    #[test]
    fn contention_accumulates_to_expected_rate() {
        let mut c = RefrintContention::new();
        // 500 refreshes per 50_000-cycle window, charged 1000 times:
        // expected stalls = 1000 * 0.01 = 10.
        let mut total = Cycle::ZERO;
        for _ in 0..1000 {
            total += c.charge(500, Cycle::new(50_000));
        }
        assert_eq!(total, Cycle::new(10));
        assert_eq!(c.total_stalls(), 10);
    }

    #[test]
    fn contention_zero_cases() {
        let mut c = RefrintContention::new();
        assert_eq!(c.charge(0, Cycle::new(100)), Cycle::ZERO);
        assert_eq!(c.charge(10, Cycle::ZERO), Cycle::ZERO);
        assert_eq!(c.total_stalls(), 0);
    }
}
