//! Pluggable refresh-policy models.
//!
//! The enum-based [`RefreshPolicy`] descriptor covers the paper's sweep
//! (Table 5.4), but users exploring new refresh hypotheses should not have to
//! fork `policy.rs` / `schedule.rs` / the system simulator. This module opens
//! the policy surface along the two axes of Table 3.1:
//!
//! * [`RefreshPolicyModel`] — a live policy bound to one cache: it decides
//!   **when refresh opportunities occur** ([`RefreshPolicyModel::opportunity`])
//!   and **what happens to a line at each opportunity**
//!   ([`RefreshPolicyModel::action`]). Everything else — settlement over an
//!   idle interval, invalidation prediction — has correct default
//!   implementations that replay opportunities one at a time, mirroring the
//!   paper's Figure 4.1 state machine. Built-in policies override
//!   [`RefreshPolicyModel::settle`] with the O(1) lazy algebra of
//!   [`DecaySchedule`].
//! * [`PolicyFactory`] — a recipe that builds a model once the per-cache
//!   parameters ([`PolicyBinding`]: retention period, sentry margin, phase
//!   offset, line count) are known. [`RefreshPolicy`] itself is a factory, so
//!   every descriptor label resolves to a model.
//! * [`PolicyRegistry`] — maps labels to factories so front ends (CLI,
//!   sweeps) can resolve user-supplied labels to either a built-in descriptor
//!   or a registered custom policy, with an error that lists the valid
//!   labels on mismatch.
//!
//! # Writing a custom policy
//!
//! ```
//! use std::sync::Arc;
//! use refrint_edram::model::{
//!     PolicyBinding, PolicyFactory, RefreshAction, RefreshPolicyModel,
//! };
//! use refrint_edram::schedule::LineKind;
//! use refrint_engine::time::Cycle;
//!
//! /// Refresh every valid line, but give up after a fixed number of idle
//! /// opportunities regardless of dirtiness ("lease" refresh).
//! #[derive(Debug)]
//! struct Lease {
//!     period: Cycle,
//!     budget: u64,
//! }
//!
//! impl RefreshPolicyModel for Lease {
//!     fn label(&self) -> String {
//!         format!("lease({})", self.budget)
//!     }
//!     fn opportunity(&self, touch: Cycle, k: u64) -> Cycle {
//!         touch + self.period * k
//!     }
//!     fn opportunity_period(&self) -> Cycle {
//!         self.period
//!     }
//!     fn action(&self, kind: LineKind, refreshes_so_far: u64) -> RefreshAction {
//!         match kind {
//!             LineKind::Invalid => RefreshAction::Skip,
//!             _ if refreshes_so_far < self.budget => RefreshAction::Refresh,
//!             LineKind::Dirty => RefreshAction::WriteBack,
//!             LineKind::Clean => RefreshAction::Invalidate,
//!         }
//!     }
//! }
//!
//! #[derive(Debug)]
//! struct LeaseFactory;
//!
//! impl PolicyFactory for LeaseFactory {
//!     fn label(&self) -> String {
//!         "lease(8)".into()
//!     }
//!     fn build(&self, binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel> {
//!         Arc::new(Lease { period: binding.sentry_period(), budget: 8 })
//!     }
//! }
//!
//! let binding = PolicyBinding::new(Cycle::new(50_000), Cycle::new(1_000), Cycle::ZERO, 1024);
//! let model = LeaseFactory.build(&binding);
//! let s = model.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(10_000_000));
//! // 8 refreshes while dirty, a write-back, 8 more while clean, then decay.
//! assert_eq!(s.refreshes, 16);
//! assert!(s.writeback_at.is_some());
//! assert!(s.invalidated_at.is_some());
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use refrint_engine::time::Cycle;

use crate::error::EdramError;
use crate::policy::{RefreshPolicy, TimePolicy};
use crate::schedule::{DecaySchedule, LineKind, Settlement};

/// What a refresh policy does with a line at one refresh opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefreshAction {
    /// Recharge the line; it survives to the next opportunity.
    Refresh,
    /// Write a dirty line back to the next level; it becomes valid-clean and
    /// its consecutive-refresh count restarts. On a clean or invalid line
    /// this degenerates to [`RefreshAction::Refresh`].
    WriteBack,
    /// Drop the line (only meaningful for valid-clean lines; the simulator
    /// never lets a policy silently discard dirty data).
    Invalidate,
    /// Do nothing. An invalid line stays invalid; a valid line that is not
    /// recharged loses its contents, so `Skip` on a valid line is recorded
    /// as an invalidation at that opportunity.
    Skip,
}

/// Replay safety valve: a policy that never invalidates an idle line is
/// detected after this many opportunities rather than looping forever.
const REPLAY_CAP: u64 = 10_000_000;

/// Cap for [`RefreshPolicyModel::invalidation_time`]'s default replay: if a
/// line survives this many consecutive idle opportunities the policy is
/// treated as never-invalidating.
const INVALIDATION_SCAN_CAP: u64 = 65_536;

/// A refresh policy bound to one cache: the time axis (when opportunities
/// occur) and the data axis (what happens at an opportunity) of the paper's
/// Table 3.1, as an open trait.
///
/// Implementors supply [`RefreshPolicyModel::opportunity`],
/// [`RefreshPolicyModel::opportunity_period`] and
/// [`RefreshPolicyModel::action`]; the settlement machinery has correct
/// (replay-based) defaults. Models must be `Send + Sync`: the parallel sweep
/// runner shares factories and models across worker threads.
pub trait RefreshPolicyModel: fmt::Debug + Send + Sync {
    /// Label identifying the policy in reports, figures and sweep keys.
    fn label(&self) -> String;

    /// The `k`-th (1-based) refresh opportunity strictly after a touch at
    /// `touch`.
    ///
    /// Opportunities must be strictly increasing in `k`; per-line timing
    /// (Refrint sentries) makes them relative to the touch, global timing
    /// (Periodic boundaries) ignores it.
    fn opportunity(&self, touch: Cycle, k: u64) -> Cycle;

    /// The interval between successive opportunities for an idle line; used
    /// for interrupt-contention modelling and bulk refresh accounting.
    fn opportunity_period(&self) -> Cycle;

    /// The action applied to a line of kind `kind` that has already received
    /// `refreshes_so_far` consecutive refreshes since it was last touched or
    /// changed kind (the per-line `Count` register of Figure 4.1; a
    /// write-back resets it).
    fn action(&self, kind: LineKind, refreshes_so_far: u64) -> RefreshAction;

    /// Number of refresh opportunities in the half-open interval
    /// `(touch, until]`.
    fn opportunities_between(&self, touch: Cycle, until: Cycle) -> u64 {
        if until <= touch {
            return 0;
        }
        let first = self.opportunity(touch, 1);
        if first > until {
            return 0;
        }
        let period = self.opportunity_period();
        if period == Cycle::ZERO {
            return 1;
        }
        1 + (until - first).div_span(period)
    }

    /// Settles a line of kind `kind`, last touched at `touch`, over the
    /// interval `(touch, until]`: how many refreshes it received, whether
    /// and when it was written back, whether and when it was invalidated.
    ///
    /// The default implementation replays every opportunity through
    /// [`RefreshPolicyModel::action`]; built-in policies override it with an
    /// O(1) closed form.
    fn settle(&self, kind: LineKind, touch: Cycle, until: Cycle) -> Settlement {
        replay_settle(self, kind, touch, until)
    }

    /// The cycle at which an idle line of `kind` last touched at `touch`
    /// will lose its valid data — or `None` if the policy keeps it alive
    /// forever. Used by the simulator to schedule eager inclusive
    /// invalidations.
    ///
    /// The default implementation replays opportunities until the line dies,
    /// giving up (and returning `None`) after a large bounded scan.
    fn invalidation_time(&self, kind: LineKind, touch: Cycle) -> Option<Cycle> {
        if matches!(kind, LineKind::Invalid) {
            return None;
        }
        let horizon = self.opportunity(touch, INVALIDATION_SCAN_CAP);
        self.settle(kind, touch, horizon).invalidated_at
    }

    /// `Some(period)` if the policy refreshes the whole array in globally
    /// scheduled group bursts (Periodic-style timing), in which case the
    /// simulator applies the burst-blocking latency model. `None` for
    /// per-line (Refrint-style) timing, which is modelled as interrupt
    /// contention.
    fn periodic_burst_period(&self) -> Option<Cycle> {
        None
    }

    /// Whether opportunities are purely touch-relative, i.e.
    /// `opportunity(t, k) == t + opportunity(0, k)` for **every** touch and
    /// `k`. The simulator memoizes idle-line invalidation deltas for such
    /// models, turning per-fill invalidation queries into O(1).
    ///
    /// The default probes a handful of sample points, which correctly
    /// classifies sentry-style (touch-relative) and boundary-style (global)
    /// timings; a model whose timing agrees at the samples but not
    /// everywhere (e.g. alignment applied only beyond some `k`) must
    /// override this to return `false`.
    fn opportunities_are_touch_relative(&self) -> bool {
        [1u64, 1_337, 1_000_003].iter().all(|&t| {
            let touch = Cycle::new(t);
            self.opportunity(touch, 1) == touch + self.opportunity(Cycle::ZERO, 1)
                && self.opportunity(touch, 5) == touch + self.opportunity(Cycle::ZERO, 5)
        })
    }

    /// Whether refresh energy for this policy is accounted in bulk for the
    /// whole array (the naive `All` data policy refreshes every physical
    /// line, so per-line settlement would be O(lines) per touch).
    fn bulk_accounting(&self) -> bool {
        false
    }

    /// The built-in [`DecaySchedule`] algebra behind this model, if it has
    /// one. Settlement runs on the simulator's per-access hot path; when a
    /// model is just a bound descriptor policy, exposing its schedule by
    /// value lets callers settle without a virtual call. Custom models keep
    /// the default (`None`) and are dispatched through the trait.
    fn as_decay_schedule(&self) -> Option<DecaySchedule> {
        None
    }
}

/// The generic event-per-opportunity replay behind the trait's default
/// [`RefreshPolicyModel::settle`]: walk each opportunity, apply the model's
/// action, and track the line's kind and consecutive-refresh count exactly
/// like the paper's Figure 4.1 state machine.
pub fn replay_settle(
    model: &(impl RefreshPolicyModel + ?Sized),
    kind: LineKind,
    touch: Cycle,
    until: Cycle,
) -> Settlement {
    let mut refreshes = 0u64;
    let mut writeback_at = None;
    let mut invalidated_at = None;
    let mut current = kind;
    let mut consecutive = 0u64;

    let mut k = 1u64;
    loop {
        let at = model.opportunity(touch, k);
        if at > until || k > REPLAY_CAP {
            break;
        }
        k += 1;
        match model.action(current, consecutive) {
            RefreshAction::Refresh => {
                refreshes += 1;
                consecutive += 1;
            }
            RefreshAction::WriteBack => match current {
                LineKind::Dirty => {
                    writeback_at = Some(at);
                    current = LineKind::Clean;
                    consecutive = 0;
                }
                // Degenerate on clean/invalid lines: behave as a refresh.
                LineKind::Clean | LineKind::Invalid => {
                    refreshes += 1;
                    consecutive += 1;
                }
            },
            RefreshAction::Invalidate | RefreshAction::Skip
                if matches!(current, LineKind::Invalid) =>
            {
                // Nothing to do, and nothing will ever change for this line.
                break;
            }
            RefreshAction::Invalidate | RefreshAction::Skip => {
                // An un-refreshed valid line decays; dirty data is written
                // back by the controller before the charge is lost.
                if matches!(current, LineKind::Dirty) {
                    writeback_at = Some(at);
                }
                invalidated_at = Some(at);
                current = LineKind::Invalid;
                consecutive = 0;
            }
        }
    }

    Settlement {
        refreshes,
        writeback_at,
        invalidated_at,
        final_kind: current,
    }
}

impl RefreshPolicyModel for DecaySchedule {
    fn label(&self) -> String {
        self.policy().label()
    }

    fn opportunity(&self, touch: Cycle, k: u64) -> Cycle {
        DecaySchedule::opportunity(self, touch, k)
    }

    fn opportunity_period(&self) -> Cycle {
        DecaySchedule::opportunity_period(self)
    }

    fn action(&self, kind: LineKind, refreshes_so_far: u64) -> RefreshAction {
        let data = self.policy().data;
        match kind {
            LineKind::Invalid => {
                if data.refreshes_invalid_lines() {
                    RefreshAction::Refresh
                } else {
                    RefreshAction::Skip
                }
            }
            LineKind::Dirty => match data.dirty_budget() {
                Some(n) if refreshes_so_far >= u64::from(n) => RefreshAction::WriteBack,
                _ => RefreshAction::Refresh,
            },
            LineKind::Clean => match data.clean_budget() {
                Some(m) if refreshes_so_far >= u64::from(m) => RefreshAction::Invalidate,
                _ => RefreshAction::Refresh,
            },
        }
    }

    fn opportunities_between(&self, touch: Cycle, until: Cycle) -> u64 {
        DecaySchedule::opportunities_between(self, touch, until)
    }

    // O(1) closed form instead of the replay.
    fn settle(&self, kind: LineKind, touch: Cycle, until: Cycle) -> Settlement {
        DecaySchedule::settle(self, kind, touch, until)
    }

    fn invalidation_time(&self, kind: LineKind, touch: Cycle) -> Option<Cycle> {
        DecaySchedule::invalidation_time(self, kind, touch)
    }

    fn periodic_burst_period(&self) -> Option<Cycle> {
        match self.policy().time {
            TimePolicy::Periodic => Some(self.retention()),
            TimePolicy::Refrint => None,
        }
    }

    fn opportunities_are_touch_relative(&self) -> bool {
        // Refrint sentries follow the touch; Periodic boundaries are global.
        self.policy().time == TimePolicy::Refrint
    }

    fn bulk_accounting(&self) -> bool {
        self.policy().data.refreshes_invalid_lines()
    }

    fn as_decay_schedule(&self) -> Option<DecaySchedule> {
        Some(*self)
    }
}

/// The per-cache parameters a [`PolicyFactory`] receives when its policy is
/// instantiated for one physical cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyBinding {
    /// Line retention period, in cycles.
    pub retention: Cycle,
    /// How much earlier than the line the sentry bit decays (the paper's
    /// conservative bound: one cycle per line in the cache).
    pub sentry_margin: Cycle,
    /// Phase offset for globally scheduled (Periodic-style) policies, used
    /// to stagger bursts across banks.
    pub phase_offset: Cycle,
    /// Number of lines in the cache.
    pub lines: u64,
}

impl PolicyBinding {
    /// Creates a binding.
    #[must_use]
    pub const fn new(
        retention: Cycle,
        sentry_margin: Cycle,
        phase_offset: Cycle,
        lines: u64,
    ) -> Self {
        PolicyBinding {
            retention,
            sentry_margin,
            phase_offset,
            lines,
        }
    }

    /// The sentry period: the interval after a touch at which the line's
    /// sentry bit decays (retention minus the safety margin).
    #[must_use]
    pub fn sentry_period(&self) -> Cycle {
        self.retention.saturating_sub(self.sentry_margin)
    }
}

/// A recipe for building a [`RefreshPolicyModel`] once the per-cache
/// parameters are known. [`RefreshPolicy`] descriptors are factories, so the
/// existing enum sweep points and custom user policies share one entry path
/// into the simulator.
pub trait PolicyFactory: fmt::Debug + Send + Sync {
    /// Label identifying the policy this factory builds (shown in reports
    /// and used as the sweep key).
    fn label(&self) -> String;

    /// Builds the model for one cache.
    fn build(&self, binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel>;
}

impl PolicyFactory for RefreshPolicy {
    fn label(&self) -> String {
        RefreshPolicy::label(self)
    }

    fn build(&self, binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel> {
        Arc::new(DecaySchedule::new(
            *self,
            binding.retention,
            binding.sentry_margin,
            binding.phase_offset,
        ))
    }
}

/// A label → factory map: resolves user-supplied policy labels to either a
/// registered custom policy or a parsed built-in [`RefreshPolicy`]
/// descriptor, and produces an error listing every valid label on mismatch.
#[derive(Debug, Clone, Default)]
pub struct PolicyRegistry {
    custom: BTreeMap<String, Arc<dyn PolicyFactory>>,
}

impl PolicyRegistry {
    /// An empty registry (built-in descriptor labels always resolve).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a custom policy factory under its own label.
    ///
    /// # Errors
    ///
    /// Returns [`EdramError::DuplicatePolicy`] if the label is already
    /// registered or shadows a parseable built-in label.
    pub fn register(&mut self, factory: Arc<dyn PolicyFactory>) -> Result<(), EdramError> {
        let label = factory.label();
        if self.custom.contains_key(&label) || label.parse::<RefreshPolicy>().is_ok() {
            return Err(EdramError::DuplicatePolicy { label });
        }
        self.custom.insert(label, factory);
        Ok(())
    }

    /// The labels of the registered custom policies, sorted.
    #[must_use]
    pub fn custom_labels(&self) -> Vec<String> {
        self.custom.keys().cloned().collect()
    }

    /// Every label this registry can resolve: the 14 built-in sweep labels
    /// (other `WB(n,m)` budgets parse too) plus the registered custom ones.
    #[must_use]
    pub fn valid_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = RefreshPolicy::paper_sweep()
            .iter()
            .map(RefreshPolicy::label)
            .collect();
        labels.extend(self.custom_labels());
        labels
    }

    /// Resolves a label to a policy factory: registered custom policies
    /// first, then the built-in descriptor grammar
    /// (`P|R . all|valid|dirty|WB(n,m)`).
    ///
    /// # Errors
    ///
    /// Returns [`EdramError::UnknownPolicy`] (listing the valid labels) if
    /// the label neither matches a custom policy nor parses.
    pub fn resolve(&self, label: &str) -> Result<Arc<dyn PolicyFactory>, EdramError> {
        if let Some(factory) = self.custom.get(label) {
            return Ok(Arc::clone(factory));
        }
        match label.parse::<RefreshPolicy>() {
            Ok(policy) => Ok(Arc::new(policy)),
            Err(_) => Err(EdramError::UnknownPolicy {
                label: label.to_owned(),
                valid: self.valid_labels(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DataPolicy;

    fn schedule(time: TimePolicy, data: DataPolicy) -> DecaySchedule {
        DecaySchedule::new(
            RefreshPolicy::new(time, data),
            Cycle::new(1_000),
            Cycle::new(100),
            Cycle::new(37),
        )
    }

    /// A minimal custom model: refresh valid lines for `budget` opportunities
    /// then drop them (write dirty data back first).
    #[derive(Debug)]
    struct Lease {
        period: Cycle,
        budget: u64,
    }

    impl RefreshPolicyModel for Lease {
        fn label(&self) -> String {
            format!("lease({})", self.budget)
        }
        fn opportunity(&self, touch: Cycle, k: u64) -> Cycle {
            touch + self.period * k
        }
        fn opportunity_period(&self) -> Cycle {
            self.period
        }
        fn action(&self, kind: LineKind, refreshes_so_far: u64) -> RefreshAction {
            match kind {
                LineKind::Invalid => RefreshAction::Skip,
                _ if refreshes_so_far < self.budget => RefreshAction::Refresh,
                LineKind::Dirty => RefreshAction::WriteBack,
                LineKind::Clean => RefreshAction::Invalidate,
            }
        }
    }

    #[test]
    fn generic_replay_matches_lazy_algebra_for_builtins() {
        let horizons = [0u64, 1, 500, 871, 1000, 5_000, 12_345, 100_000];
        let datas = [
            DataPolicy::All,
            DataPolicy::Valid,
            DataPolicy::Dirty,
            DataPolicy::write_back(0, 0),
            DataPolicy::write_back(2, 3),
            DataPolicy::write_back(32, 32),
        ];
        for time in TimePolicy::ALL {
            for data in datas {
                let s = schedule(time, data);
                for kind in [LineKind::Dirty, LineKind::Clean, LineKind::Invalid] {
                    for h in horizons {
                        let touch = Cycle::new(123);
                        let until = touch + Cycle::new(h);
                        let fast = RefreshPolicyModel::settle(&s, kind, touch, until);
                        let slow = replay_settle(&s, kind, touch, until);
                        assert_eq!(fast, slow, "{time:?} {data:?} {kind:?} horizon {h}");
                    }
                }
            }
        }
    }

    #[test]
    fn custom_model_lifecycle_via_default_settle() {
        let lease = Lease {
            period: Cycle::new(900),
            budget: 2,
        };
        // Dirty line: refreshes at 900, 1800; write-back at 2700 (count
        // resets); clean refreshes at 3600, 4500; invalidation at 5400.
        let s = lease.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(1_000_000));
        assert_eq!(s.refreshes, 4);
        assert_eq!(s.writeback_at, Some(Cycle::new(2_700)));
        assert_eq!(s.invalidated_at, Some(Cycle::new(5_400)));
        assert_eq!(s.final_kind, LineKind::Invalid);
        assert_eq!(
            lease.invalidation_time(LineKind::Dirty, Cycle::ZERO),
            Some(Cycle::new(5_400))
        );
        // Truncated interval: nothing has expired yet.
        let early = lease.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(2_000));
        assert_eq!(early.refreshes, 2);
        assert_eq!(early.final_kind, LineKind::Dirty);
        // Invalid lines are inert.
        assert_eq!(
            lease.settle(LineKind::Invalid, Cycle::ZERO, Cycle::new(1_000_000)),
            Settlement::nothing(LineKind::Invalid)
        );
    }

    #[test]
    fn skip_on_a_valid_line_decays_it() {
        /// A policy that never refreshes anything.
        #[derive(Debug)]
        struct NoRefresh;
        impl RefreshPolicyModel for NoRefresh {
            fn label(&self) -> String {
                "none".into()
            }
            fn opportunity(&self, touch: Cycle, k: u64) -> Cycle {
                touch + Cycle::new(100) * k
            }
            fn opportunity_period(&self) -> Cycle {
                Cycle::new(100)
            }
            fn action(&self, _: LineKind, _: u64) -> RefreshAction {
                RefreshAction::Skip
            }
        }
        let s = NoRefresh.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(1_000));
        assert_eq!(s.refreshes, 0);
        // Dirty data is written back by the controller before decay.
        assert_eq!(s.writeback_at, Some(Cycle::new(100)));
        assert_eq!(s.invalidated_at, Some(Cycle::new(100)));
        let s = NoRefresh.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(1_000));
        assert_eq!(s.writeback_at, None);
        assert_eq!(s.invalidated_at, Some(Cycle::new(100)));
    }

    #[test]
    fn decay_schedule_model_metadata() {
        let periodic = schedule(TimePolicy::Periodic, DataPolicy::All);
        assert_eq!(periodic.periodic_burst_period(), Some(Cycle::new(1_000)));
        assert!(periodic.bulk_accounting());
        assert_eq!(RefreshPolicyModel::label(&periodic), "P.all");

        let refrint = schedule(TimePolicy::Refrint, DataPolicy::write_back(4, 4));
        assert_eq!(refrint.periodic_burst_period(), None);
        assert!(!refrint.bulk_accounting());
        assert_eq!(RefreshPolicyModel::label(&refrint), "R.WB(4,4)");
    }

    #[test]
    fn refresh_policy_is_a_factory() {
        let binding = PolicyBinding::new(Cycle::new(1_000), Cycle::new(100), Cycle::ZERO, 64);
        let model = RefreshPolicy::recommended().build(&binding);
        assert_eq!(model.label(), "R.WB(32,32)");
        assert_eq!(model.opportunity_period(), Cycle::new(900));
        assert_eq!(binding.sentry_period(), Cycle::new(900));
        let s = model.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(10_000_000));
        assert_eq!(s.refreshes, 32);
    }

    #[derive(Debug)]
    struct LeaseFactory;
    impl PolicyFactory for LeaseFactory {
        fn label(&self) -> String {
            "lease(2)".into()
        }
        fn build(&self, binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel> {
            Arc::new(Lease {
                period: binding.sentry_period(),
                budget: 2,
            })
        }
    }

    #[test]
    fn registry_resolves_custom_then_builtin() {
        let mut registry = PolicyRegistry::new();
        registry.register(Arc::new(LeaseFactory)).unwrap();
        assert!(registry.resolve("lease(2)").is_ok());
        assert_eq!(registry.resolve("R.WB(8,8)").unwrap().label(), "R.WB(8,8)");

        let err = registry.resolve("R.sometimes").unwrap_err();
        match err {
            EdramError::UnknownPolicy {
                ref label,
                ref valid,
            } => {
                assert_eq!(label, "R.sometimes");
                assert!(valid.iter().any(|l| l == "P.all"));
                assert!(valid.iter().any(|l| l == "lease(2)"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let message = err.to_string();
        assert!(message.contains("R.sometimes"));
        assert!(message.contains("P.all"));
        assert!(message.contains("lease(2)"));
    }

    #[test]
    fn registry_rejects_duplicate_and_shadowing_labels() {
        let mut registry = PolicyRegistry::new();
        registry.register(Arc::new(LeaseFactory)).unwrap();
        assert!(matches!(
            registry.register(Arc::new(LeaseFactory)),
            Err(EdramError::DuplicatePolicy { .. })
        ));

        #[derive(Debug)]
        struct Shadow;
        impl PolicyFactory for Shadow {
            fn label(&self) -> String {
                "P.all".into()
            }
            fn build(&self, binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel> {
                RefreshPolicy::edram_baseline().build(binding)
            }
        }
        assert!(matches!(
            registry.register(Arc::new(Shadow)),
            Err(EdramError::DuplicatePolicy { .. })
        ));
    }
}
