//! Refresh policies: the time-based and data-based components of Table 3.1,
//! plus the 42-point parameter sweep of Table 5.4.

use std::fmt;
use std::str::FromStr;

use crate::error::EdramError;

/// When refresh opportunities occur (the time-based policy of Table 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimePolicy {
    /// Refresh at fixed period boundaries, a group of lines at a time.
    /// Cheap (one global counter) but eager: a line may be refreshed right
    /// after an access already recharged it, and the cache is blocked while
    /// a group burst is in progress.
    Periodic,
    /// Refresh when the per-line Sentry bit decays — one retention period
    /// (minus a safety margin) after the line's last access. Performs the
    /// minimum number of refreshes needed to keep a line alive.
    #[default]
    Refrint,
}

impl TimePolicy {
    /// Both time policies, in the order the paper's figures list them.
    pub const ALL: [TimePolicy; 2] = [TimePolicy::Periodic, TimePolicy::Refrint];

    /// The single-letter prefix used in the paper's figure labels
    /// (`P.` / `R.`).
    #[must_use]
    pub const fn prefix(self) -> char {
        match self {
            TimePolicy::Periodic => 'P',
            TimePolicy::Refrint => 'R',
        }
    }
}

impl fmt::Display for TimePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimePolicy::Periodic => write!(f, "Periodic"),
            TimePolicy::Refrint => write!(f, "Refrint"),
        }
    }
}

/// What to do with a line at a refresh opportunity (the data-based policy of
/// Table 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPolicy {
    /// Refresh every line, valid or not. Evaluated for reference only; this
    /// is the behaviour of a naive eDRAM cache (`Periodic All` is the
    /// paper's eDRAM baseline).
    All,
    /// Refresh valid lines; invalid lines are left alone.
    Valid,
    /// Refresh dirty lines; invalidate valid-clean lines at their first
    /// opportunity. Equivalent to `WB(∞, 0)`.
    Dirty,
    /// Refresh a dirty line `n` times before writing it back (it then
    /// becomes valid-clean), and a valid-clean line `m` times before
    /// invalidating it.
    WriteBack {
        /// Refreshes granted to an idle dirty line before write-back.
        n: u32,
        /// Refreshes granted to an idle clean line before invalidation.
        m: u32,
    },
}

impl DataPolicy {
    /// The seven data policies of the paper's sweep (Table 5.4).
    #[must_use]
    pub fn paper_sweep() -> [DataPolicy; 7] {
        [
            DataPolicy::All,
            DataPolicy::Valid,
            DataPolicy::Dirty,
            DataPolicy::write_back(4, 4),
            DataPolicy::write_back(8, 8),
            DataPolicy::write_back(16, 16),
            DataPolicy::write_back(32, 32),
        ]
    }

    /// Convenience constructor for `WB(n,m)`.
    #[must_use]
    pub const fn write_back(n: u32, m: u32) -> Self {
        DataPolicy::WriteBack { n, m }
    }

    /// The number of refreshes an idle *dirty* line receives before it is
    /// written back, or `None` if it is refreshed indefinitely.
    #[must_use]
    pub const fn dirty_budget(self) -> Option<u32> {
        match self {
            DataPolicy::All | DataPolicy::Valid | DataPolicy::Dirty => None,
            DataPolicy::WriteBack { n, .. } => Some(n),
        }
    }

    /// The number of refreshes an idle *valid-clean* line receives before it
    /// is invalidated, or `None` if it is refreshed indefinitely.
    #[must_use]
    pub const fn clean_budget(self) -> Option<u32> {
        match self {
            DataPolicy::All | DataPolicy::Valid => None,
            DataPolicy::Dirty => Some(0),
            DataPolicy::WriteBack { m, .. } => Some(m),
        }
    }

    /// Whether invalid lines are refreshed too (only `All` does that).
    #[must_use]
    pub const fn refreshes_invalid_lines(self) -> bool {
        matches!(self, DataPolicy::All)
    }

    /// Whether this policy can ever evict data early (and therefore create
    /// extra misses and DRAM traffic relative to SRAM).
    #[must_use]
    pub const fn may_discard_data(self) -> bool {
        matches!(self, DataPolicy::Dirty | DataPolicy::WriteBack { .. })
    }
}

impl Default for DataPolicy {
    /// The policy the paper recommends on average: `WB(32,32)`.
    fn default() -> Self {
        DataPolicy::write_back(32, 32)
    }
}

impl fmt::Display for DataPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPolicy::All => write!(f, "all"),
            DataPolicy::Valid => write!(f, "valid"),
            DataPolicy::Dirty => write!(f, "dirty"),
            DataPolicy::WriteBack { n, m } => write!(f, "WB({n},{m})"),
        }
    }
}

/// A complete refresh policy: a time policy plus a data policy, e.g.
/// `R.WB(32,32)` in the paper's figure labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RefreshPolicy {
    /// When refresh opportunities occur.
    pub time: TimePolicy,
    /// What happens at an opportunity.
    pub data: DataPolicy,
}

impl RefreshPolicy {
    /// Creates a policy from its two components.
    #[must_use]
    pub const fn new(time: TimePolicy, data: DataPolicy) -> Self {
        RefreshPolicy { time, data }
    }

    /// The paper's eDRAM baseline: `Periodic All`.
    #[must_use]
    pub const fn edram_baseline() -> Self {
        RefreshPolicy {
            time: TimePolicy::Periodic,
            data: DataPolicy::All,
        }
    }

    /// The paper's recommended policy: `Refrint WB(32,32)`.
    #[must_use]
    pub const fn recommended() -> Self {
        RefreshPolicy {
            time: TimePolicy::Refrint,
            data: DataPolicy::write_back(32, 32),
        }
    }

    /// The 14 (2 × 7) policy combinations of Table 5.4, in figure order:
    /// all Periodic policies first, then all Refrint policies.
    #[must_use]
    pub fn paper_sweep() -> Vec<RefreshPolicy> {
        let mut out = Vec::with_capacity(14);
        for time in TimePolicy::ALL {
            for data in DataPolicy::paper_sweep() {
                out.push(RefreshPolicy::new(time, data));
            }
        }
        out
    }

    /// The figure label used on the paper's X axes, e.g. `P.WB(4,4)` or
    /// `R.valid`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}.{}", self.time.prefix(), self.data)
    }
}

impl fmt::Display for RefreshPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl FromStr for RefreshPolicy {
    type Err = EdramError;

    /// Parses a figure label such as `P.all`, `R.valid`, `R.WB(32,32)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || EdramError::InvalidPolicy {
            label: s.to_owned(),
        };
        let (time_str, data_str) = s.split_once('.').ok_or_else(err)?;
        let time = match time_str {
            "P" | "p" | "Periodic" | "periodic" => TimePolicy::Periodic,
            "R" | "r" | "Refrint" | "refrint" => TimePolicy::Refrint,
            _ => return Err(err()),
        };
        let data_lower = data_str.to_ascii_lowercase();
        let data = if data_lower == "all" {
            DataPolicy::All
        } else if data_lower == "valid" {
            DataPolicy::Valid
        } else if data_lower == "dirty" {
            DataPolicy::Dirty
        } else if let Some(args) = data_lower
            .strip_prefix("wb(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            let (n, m) = args.split_once(',').ok_or_else(err)?;
            DataPolicy::WriteBack {
                n: n.trim().parse().map_err(|_| err())?,
                m: m.trim().parse().map_err(|_| err())?,
            }
        } else {
            return Err(err());
        };
        Ok(RefreshPolicy::new(time, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_has_42_points_with_retentions() {
        // 2 time policies x 7 data policies = 14; x 3 retention times = 42,
        // matching Table 5.4.
        let policies = RefreshPolicy::paper_sweep();
        assert_eq!(policies.len(), 14);
        assert_eq!(policies.len() * 3, 42);
        // No duplicates.
        let mut labels: Vec<String> = policies.iter().map(RefreshPolicy::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 14);
    }

    #[test]
    fn policy_taxonomy_budgets() {
        assert_eq!(DataPolicy::All.dirty_budget(), None);
        assert_eq!(DataPolicy::All.clean_budget(), None);
        assert!(DataPolicy::All.refreshes_invalid_lines());
        assert!(!DataPolicy::All.may_discard_data());

        assert_eq!(DataPolicy::Valid.dirty_budget(), None);
        assert_eq!(DataPolicy::Valid.clean_budget(), None);
        assert!(!DataPolicy::Valid.refreshes_invalid_lines());

        // Dirty is WB(inf, 0).
        assert_eq!(DataPolicy::Dirty.dirty_budget(), None);
        assert_eq!(DataPolicy::Dirty.clean_budget(), Some(0));
        assert!(DataPolicy::Dirty.may_discard_data());

        let wb = DataPolicy::write_back(8, 16);
        assert_eq!(wb.dirty_budget(), Some(8));
        assert_eq!(wb.clean_budget(), Some(16));
        assert!(wb.may_discard_data());
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(RefreshPolicy::edram_baseline().label(), "P.all");
        assert_eq!(RefreshPolicy::recommended().label(), "R.WB(32,32)");
        assert_eq!(
            RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::write_back(4, 4)).label(),
            "P.WB(4,4)"
        );
        assert_eq!(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid).to_string(),
            "R.valid"
        );
    }

    #[test]
    fn parse_round_trip() {
        for p in RefreshPolicy::paper_sweep() {
            let parsed: RefreshPolicy = p.label().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert_eq!(
            "periodic.dirty".parse::<RefreshPolicy>().unwrap(),
            RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Dirty)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<RefreshPolicy>().is_err());
        assert!("X.all".parse::<RefreshPolicy>().is_err());
        assert!("R.sometimes".parse::<RefreshPolicy>().is_err());
        assert!("R.WB(1)".parse::<RefreshPolicy>().is_err());
        assert!("R.WB(a,b)".parse::<RefreshPolicy>().is_err());
        assert!("Rall".parse::<RefreshPolicy>().is_err());
    }

    #[test]
    fn defaults_are_the_recommended_configuration() {
        assert_eq!(RefreshPolicy::default().time, TimePolicy::Refrint);
        assert_eq!(
            RefreshPolicy::default().data,
            DataPolicy::write_back(32, 32)
        );
        assert_eq!(RefreshPolicy::default(), RefreshPolicy::recommended());
    }

    #[test]
    fn time_policy_prefixes() {
        assert_eq!(TimePolicy::Periodic.prefix(), 'P');
        assert_eq!(TimePolicy::Refrint.prefix(), 'R');
        assert_eq!(TimePolicy::Periodic.to_string(), "Periodic");
        assert_eq!(TimePolicy::Refrint.to_string(), "Refrint");
    }
}
