//! Per-bank retention variation profiles.
//!
//! Retention time is a strong function of process variation: within one die,
//! different eDRAM macros leak at visibly different rates, which is why the
//! paper reports a *measured worst case* (40 µs at 105 °C) rather than a
//! nominal figure. A [`RetentionProfile`] models that spread as a
//! deterministic, seeded assignment of a retention *scale factor* to each L3
//! bank: the nominal retention stays the sweep axis, and the profile says how
//! far each bank deviates from it.
//!
//! Everything here is integer arithmetic on per-mille factors — no floating
//! point — so the sampled assignment is bit-identical across platforms and
//! worker counts. The "normal" profile uses an Irwin–Hall sum (twelve
//! uniforms) as its Gaussian approximation for the same reason.

use std::fmt;
use std::str::FromStr;

use refrint_engine::rng::DeterministicRng;

/// Domain-separation constant mixed into the simulation seed so the
/// retention sampler never shares a stream with workload generation.
const RETENTION_STREAM: u64 = 0x7265_7465_6e74_696f;

/// How per-bank retention scale factors are drawn.
///
/// Factors are expressed in per-mille of the nominal retention: `1000`
/// means the bank retains exactly as long as the configured retention time.
/// The [`RetentionProfile::Uniform`] default assigns `1000` to every bank
/// without consuming any randomness, so the default path is bit-identical
/// to a simulator that has never heard of retention variation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RetentionProfile {
    /// Every bank retains for exactly the nominal retention time.
    #[default]
    Uniform,
    /// Factors are approximately normally distributed around the nominal
    /// retention with a standard deviation of `sigma_pct` percent, clamped
    /// to [5 %, 400 %] of nominal.
    Normal {
        /// Standard deviation, in percent of the nominal retention (1–100).
        sigma_pct: u8,
    },
    /// A fraction of banks are "weak" (fast-leaking): each bank is weak
    /// with probability `weak_pct` percent, and weak banks retain for
    /// `weak_retention_pct` percent of nominal; the rest are nominal.
    Bimodal {
        /// Percentage of banks expected to be weak (0–100).
        weak_pct: u8,
        /// Retention of a weak bank, in percent of nominal (1–100).
        weak_retention_pct: u8,
    },
}

impl RetentionProfile {
    /// Factor clamp bounds, per mille of nominal retention.
    const MIN_FACTOR: i64 = 50;
    const MAX_FACTOR: i64 = 4000;

    /// The canonical label used in spec strings, CLI flags, and cache keys.
    /// Round-trips through [`FromStr`].
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RetentionProfile::Uniform => "uniform".to_owned(),
            RetentionProfile::Normal { sigma_pct } => format!("normal({sigma_pct})"),
            RetentionProfile::Bimodal {
                weak_pct,
                weak_retention_pct,
            } => format!("bimodal({weak_pct},{weak_retention_pct})"),
        }
    }

    /// Whether this is the default (uniform) profile — the one that must
    /// keep every output byte-identical to the pre-variation simulator.
    #[must_use]
    pub fn is_default(&self) -> bool {
        matches!(self, RetentionProfile::Uniform)
    }

    /// Samples the per-bank retention factors, in per-mille of nominal.
    ///
    /// The assignment depends only on `(self, seed, banks)`: bank `b`'s
    /// factor is drawn from a stream forked per bank, so it is independent
    /// of how many banks are sampled after it and of any threading in the
    /// caller. Uniform profiles consume no randomness at all.
    #[must_use]
    pub fn factors_per_mille(&self, seed: u64, banks: usize) -> Vec<u64> {
        match *self {
            RetentionProfile::Uniform => vec![1000; banks],
            RetentionProfile::Normal { sigma_pct } => {
                let root = DeterministicRng::from_seed(seed ^ RETENTION_STREAM);
                (0..banks)
                    .map(|b| {
                        let mut rng = root.fork(b as u64);
                        // Irwin–Hall: the sum of 12 uniforms on [0, 2000]
                        // has mean 12000 and standard deviation 2000, so
                        // (sum - 12000) / 2000 approximates a standard
                        // normal using integers only.
                        let sum: i64 = (0..12).map(|_| rng.below(2001) as i64).sum();
                        let factor = 1000 + i64::from(sigma_pct) * (sum - 12_000) / 200;
                        factor.clamp(Self::MIN_FACTOR, Self::MAX_FACTOR) as u64
                    })
                    .collect()
            }
            RetentionProfile::Bimodal {
                weak_pct,
                weak_retention_pct,
            } => {
                let root = DeterministicRng::from_seed(seed ^ RETENTION_STREAM);
                (0..banks)
                    .map(|b| {
                        let mut rng = root.fork(b as u64);
                        if rng.below(100) < u64::from(weak_pct) {
                            u64::from(weak_retention_pct) * 10
                        } else {
                            1000
                        }
                    })
                    .collect()
            }
        }
    }
}

impl fmt::Display for RetentionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Error returned when a retention-profile label fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRetentionProfileError {
    reason: String,
}

impl fmt::Display for ParseRetentionProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for ParseRetentionProfileError {}

fn parse_err(reason: impl Into<String>) -> ParseRetentionProfileError {
    ParseRetentionProfileError {
        reason: reason.into(),
    }
}

fn parse_pct(s: &str, what: &str, min: u8) -> Result<u8, ParseRetentionProfileError> {
    let v: u8 = s
        .trim()
        .parse()
        .map_err(|_| parse_err(format!("{what} `{s}` is not a number in 0..=100")))?;
    if v > 100 || v < min {
        return Err(parse_err(format!("{what} {v} out of range {min}..=100")));
    }
    Ok(v)
}

impl FromStr for RetentionProfile {
    type Err = ParseRetentionProfileError;

    /// Parses `uniform`, `normal(SIGMA)`, or `bimodal(WEAK,RETENTION)` —
    /// the exact strings [`RetentionProfile::label`] produces.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s == "uniform" {
            return Ok(RetentionProfile::Uniform);
        }
        if let Some(args) = s.strip_prefix("normal(").and_then(|r| r.strip_suffix(')')) {
            let sigma_pct = parse_pct(args, "normal sigma", 1)?;
            return Ok(RetentionProfile::Normal { sigma_pct });
        }
        if let Some(args) = s.strip_prefix("bimodal(").and_then(|r| r.strip_suffix(')')) {
            let (weak, ret) = args.split_once(',').ok_or_else(|| {
                parse_err("bimodal profile needs two arguments: bimodal(WEAK_PCT,RETENTION_PCT)")
            })?;
            let weak_pct = parse_pct(weak, "bimodal weak fraction", 0)?;
            let weak_retention_pct = parse_pct(ret, "bimodal weak retention", 1)?;
            return Ok(RetentionProfile::Bimodal {
                weak_pct,
                weak_retention_pct,
            });
        }
        Err(parse_err(format!(
            "unknown retention profile `{s}` (expected uniform, normal(SIGMA), or \
             bimodal(WEAK_PCT,RETENTION_PCT))"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_assigns_nominal_everywhere() {
        let f = RetentionProfile::Uniform.factors_per_mille(42, 8);
        assert_eq!(f, vec![1000; 8]);
        assert!(RetentionProfile::default().is_default());
    }

    #[test]
    fn labels_round_trip() {
        for p in [
            RetentionProfile::Uniform,
            RetentionProfile::Normal { sigma_pct: 10 },
            RetentionProfile::Bimodal {
                weak_pct: 25,
                weak_retention_pct: 60,
            },
        ] {
            assert_eq!(p.label().parse::<RetentionProfile>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!("gaussian".parse::<RetentionProfile>().is_err());
        assert!("normal(0)".parse::<RetentionProfile>().is_err());
        assert!("normal(101)".parse::<RetentionProfile>().is_err());
        assert!("bimodal(25)".parse::<RetentionProfile>().is_err());
        assert!("bimodal(25,0)".parse::<RetentionProfile>().is_err());
        assert!("bimodal(200,60)".parse::<RetentionProfile>().is_err());
        assert!("normal(abc)".parse::<RetentionProfile>().is_err());
    }

    #[test]
    fn parse_tolerates_whitespace() {
        assert_eq!(
            " bimodal( 25 , 60 ) ".parse::<RetentionProfile>().unwrap(),
            RetentionProfile::Bimodal {
                weak_pct: 25,
                weak_retention_pct: 60,
            }
        );
    }

    #[test]
    fn sampling_is_per_bank_stable() {
        // The factor of bank b must not depend on how many banks exist:
        // this is what makes per-bank settlement order-independent.
        let p = RetentionProfile::Normal { sigma_pct: 20 };
        let four = p.factors_per_mille(7, 4);
        let sixteen = p.factors_per_mille(7, 16);
        assert_eq!(&sixteen[..4], &four[..]);
    }

    #[test]
    fn sampling_is_seed_sensitive() {
        let p = RetentionProfile::Normal { sigma_pct: 20 };
        assert_ne!(p.factors_per_mille(1, 16), p.factors_per_mille(2, 16));
        // And deterministic per seed.
        assert_eq!(p.factors_per_mille(1, 16), p.factors_per_mille(1, 16));
    }

    #[test]
    fn normal_factors_center_on_nominal() {
        let p = RetentionProfile::Normal { sigma_pct: 10 };
        let f = p.factors_per_mille(3, 256);
        let mean: u64 = f.iter().sum::<u64>() / f.len() as u64;
        assert!((900..=1100).contains(&mean), "mean {mean} far from nominal");
        assert!(f.iter().all(|&x| (50..=4000).contains(&x)));
        // With 10% sigma there must be visible spread.
        assert!(f.iter().any(|&x| x != 1000));
    }

    #[test]
    fn bimodal_factors_are_two_valued() {
        let p = RetentionProfile::Bimodal {
            weak_pct: 25,
            weak_retention_pct: 60,
        };
        let f = p.factors_per_mille(11, 256);
        assert!(f.iter().all(|&x| x == 1000 || x == 600));
        let weak = f.iter().filter(|&&x| x == 600).count();
        // ~25% of 256 banks; allow generous slack for a 64-draw tail.
        assert!((30..=100).contains(&weak), "weak count {weak}");
    }

    #[test]
    fn bimodal_extremes() {
        let all_weak = RetentionProfile::Bimodal {
            weak_pct: 100,
            weak_retention_pct: 50,
        };
        assert_eq!(all_weak.factors_per_mille(5, 8), vec![500; 8]);
        let none_weak = RetentionProfile::Bimodal {
            weak_pct: 0,
            weak_retention_pct: 50,
        };
        assert_eq!(none_weak.factors_per_mille(5, 8), vec![1000; 8]);
    }
}
