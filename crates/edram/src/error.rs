//! Error types for the eDRAM refresh subsystem.

use std::error::Error;
use std::fmt;

/// Errors produced by the eDRAM refresh subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EdramError {
    /// The retention configuration was invalid.
    InvalidRetention {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A policy label could not be parsed.
    InvalidPolicy {
        /// The offending label.
        label: String,
    },
    /// A sentry-bit grouping configuration was invalid.
    InvalidSentryConfig {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A policy label matched neither a registered custom policy nor the
    /// built-in descriptor grammar.
    UnknownPolicy {
        /// The offending label.
        label: String,
        /// Every label the registry would have accepted.
        valid: Vec<String>,
    },
    /// A custom policy was registered under a label that is already taken.
    DuplicatePolicy {
        /// The conflicting label.
        label: String,
    },
}

impl fmt::Display for EdramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdramError::InvalidRetention { reason } => {
                write!(f, "invalid retention configuration: {reason}")
            }
            EdramError::InvalidPolicy { label } => {
                write!(f, "cannot parse refresh policy label `{label}`")
            }
            EdramError::InvalidSentryConfig { reason } => {
                write!(f, "invalid sentry-bit configuration: {reason}")
            }
            EdramError::UnknownPolicy { label, valid } => {
                write!(
                    f,
                    "unknown refresh policy `{label}`; valid labels are \
                     `P|R.all|valid|dirty|WB(n,m)` — e.g. {}",
                    valid.join(", ")
                )
            }
            EdramError::DuplicatePolicy { label } => {
                write!(
                    f,
                    "a refresh policy labelled `{label}` is already registered"
                )
            }
        }
    }
}

impl Error for EdramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EdramError::InvalidRetention { reason: "x".into() }
            .to_string()
            .contains("retention"));
        assert!(EdramError::InvalidPolicy {
            label: "Z.9".into()
        }
        .to_string()
        .contains("Z.9"));
        assert!(EdramError::InvalidSentryConfig { reason: "y".into() }
            .to_string()
            .contains("sentry"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<EdramError>();
    }
}
