//! Exact, event-per-opportunity refresh engine.
//!
//! This is the straightforward implementation of the paper's Figure 4.1
//! state machine: walk every refresh opportunity one at a time, maintain the
//! per-line `Count`, and record each refresh, write-back and invalidation.
//! It is far too slow for full-system simulation but serves as the reference
//! against which the lazy [`crate::schedule::DecaySchedule`] algebra is
//! validated (property tests assert they agree on arbitrary inputs).

use refrint_engine::time::Cycle;

use crate::policy::TimePolicy;
use crate::schedule::{DecaySchedule, LineKind, Settlement};

/// Replays every refresh opportunity in `(touch, until]` for a line of kind
/// `kind` last touched at `touch`, following the WB(n,m) state machine, and
/// returns the same summary as [`DecaySchedule::settle`].
#[must_use]
pub fn settle_exact(
    schedule: &DecaySchedule,
    kind: LineKind,
    touch: Cycle,
    until: Cycle,
) -> Settlement {
    let policy = schedule.policy();
    let mut refreshes = 0u64;
    let mut writeback_at = None;
    let mut invalidated_at = None;
    let mut current = kind;

    // Dirty lines start with the dirty budget, clean lines with the clean
    // budget; `None` means "refresh forever".
    let mut count: Option<u64> = match kind {
        LineKind::Dirty => policy.data.dirty_budget().map(u64::from),
        LineKind::Clean => policy.data.clean_budget().map(u64::from),
        LineKind::Invalid => None,
    };

    let mut k = 1u64;
    loop {
        let at = schedule.opportunity(touch, k);
        if at > until {
            break;
        }
        k += 1;

        match current {
            LineKind::Invalid => {
                if policy.data.refreshes_invalid_lines() {
                    refreshes += 1;
                } else {
                    break;
                }
            }
            LineKind::Dirty | LineKind::Clean => match count {
                None => refreshes += 1,
                Some(c) if c >= 1 => {
                    refreshes += 1;
                    count = Some(c - 1);
                }
                Some(_) => {
                    // Budget exhausted.
                    if current == LineKind::Dirty {
                        // Write back, become clean, reload the clean budget.
                        writeback_at = Some(at);
                        current = LineKind::Clean;
                        count = policy.data.clean_budget().map(u64::from);
                    } else {
                        invalidated_at = Some(at);
                        current = LineKind::Invalid;
                        if !policy.data.refreshes_invalid_lines() {
                            break;
                        }
                    }
                }
            },
        }

        // Safety valve for pathological configurations in tests.
        if k > 10_000_000 {
            break;
        }
    }

    Settlement {
        refreshes,
        writeback_at,
        invalidated_at,
        final_kind: current,
    }
}

/// The exact number of line refreshes a naive periodic controller performs on
/// a whole cache of `lines` lines over `window` cycles — used to sanity-check
/// the analytic count in [`crate::controller::PeriodicBurstModel`].
#[must_use]
pub fn periodic_whole_cache_refreshes(retention: Cycle, lines: u64, window: Cycle) -> u64 {
    if retention == Cycle::ZERO {
        return 0;
    }
    lines * window.div_span(retention)
}

/// Asserts (in tests) that a schedule is a Refrint schedule; used by the
/// property tests that compare per-touch behaviour.
#[must_use]
pub fn is_refrint(schedule: &DecaySchedule) -> bool {
    schedule.policy().time == TimePolicy::Refrint
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DataPolicy, RefreshPolicy, TimePolicy};

    fn schedule(time: TimePolicy, data: DataPolicy) -> DecaySchedule {
        DecaySchedule::new(
            RefreshPolicy::new(time, data),
            Cycle::new(1000),
            Cycle::new(128),
            Cycle::new(37),
        )
    }

    #[test]
    fn exact_matches_lazy_on_representative_cases() {
        let horizons = [0u64, 1, 500, 871, 872, 1000, 5000, 12_345, 100_000];
        let datas = [
            DataPolicy::All,
            DataPolicy::Valid,
            DataPolicy::Dirty,
            DataPolicy::write_back(0, 0),
            DataPolicy::write_back(1, 0),
            DataPolicy::write_back(0, 3),
            DataPolicy::write_back(4, 4),
            DataPolicy::write_back(32, 32),
        ];
        for time in TimePolicy::ALL {
            for data in datas {
                let s = schedule(time, data);
                for kind in [LineKind::Dirty, LineKind::Clean, LineKind::Invalid] {
                    for touch in [0u64, 1, 500, 999, 1000, 1234] {
                        for h in horizons {
                            let touch = Cycle::new(touch);
                            let until = touch + Cycle::new(h);
                            let lazy = s.settle(kind, touch, until);
                            let exact = settle_exact(&s, kind, touch, until);
                            assert_eq!(
                                lazy, exact,
                                "mismatch: {time:?} {data:?} {kind:?} touch={touch} until={until}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn periodic_whole_cache_count_matches_burst_model() {
        use crate::controller::PeriodicBurstModel;
        let retention = Cycle::new(50_000);
        let m = PeriodicBurstModel::new(retention, 4, 4096);
        let window = Cycle::new(500_000);
        assert_eq!(
            m.refreshes_in(window),
            periodic_whole_cache_refreshes(retention, 4 * 4096, window)
        );
    }

    #[test]
    fn is_refrint_helper() {
        assert!(is_refrint(&schedule(
            TimePolicy::Refrint,
            DataPolicy::Valid
        )));
        assert!(!is_refrint(&schedule(
            TimePolicy::Periodic,
            DataPolicy::Valid
        )));
    }

    #[test]
    fn zero_retention_helper_is_zero() {
        assert_eq!(
            periodic_whole_cache_refreshes(Cycle::ZERO, 100, Cycle::new(100)),
            0
        );
    }
}
