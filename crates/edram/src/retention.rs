//! Retention times and sentry-bit safety margins.
//!
//! The paper sweeps eDRAM retention times of 50 µs, 100 µs and 200 µs
//! (Chapter 5), citing a measured 40 µs at 105 °C and an exponential
//! dependence of retention on temperature. The Sentry bit must decay early
//! enough that every pending interrupt can be serviced before its line
//! expires; the paper's conservative bound makes the margin equal to the
//! number of lines that could fire simultaneously (16 µs for a 16K-line L3
//! bank at 1 GHz).

use std::fmt;

use refrint_engine::time::{Cycle, Freq, SimDuration};

use crate::error::EdramError;

/// Retention configuration for one eDRAM technology point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionConfig {
    retention: SimDuration,
    frequency: Freq,
}

impl RetentionConfig {
    /// Creates a retention configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EdramError::InvalidRetention`] if the retention period is
    /// shorter than one cycle at the given frequency.
    pub fn new(retention: SimDuration, frequency: Freq) -> Result<Self, EdramError> {
        if frequency.cycles_in(retention) == Cycle::ZERO {
            return Err(EdramError::InvalidRetention {
                reason: format!("retention {retention} is shorter than one cycle at {frequency}"),
            });
        }
        Ok(RetentionConfig {
            retention,
            frequency,
        })
    }

    /// A retention time given in microseconds at the paper's 1 GHz clock —
    /// the one mapping every front end (builder, CLI, sweep) shares.
    ///
    /// # Errors
    ///
    /// Returns [`EdramError::InvalidRetention`] if the period is shorter
    /// than one cycle.
    pub fn from_microseconds(us: u64) -> Result<Self, EdramError> {
        match us {
            50 => Ok(Self::microseconds_50()),
            100 => Ok(Self::microseconds_100()),
            200 => Ok(Self::microseconds_200()),
            other => Self::new(SimDuration::from_micros(other), Freq::gigahertz(1)),
        }
    }

    /// The paper's 50 µs point at 1 GHz.
    #[must_use]
    pub fn microseconds_50() -> Self {
        RetentionConfig {
            retention: SimDuration::from_micros(50),
            frequency: Freq::gigahertz(1),
        }
    }

    /// The paper's 100 µs point at 1 GHz.
    #[must_use]
    pub fn microseconds_100() -> Self {
        RetentionConfig {
            retention: SimDuration::from_micros(100),
            frequency: Freq::gigahertz(1),
        }
    }

    /// The paper's 200 µs point at 1 GHz.
    #[must_use]
    pub fn microseconds_200() -> Self {
        RetentionConfig {
            retention: SimDuration::from_micros(200),
            frequency: Freq::gigahertz(1),
        }
    }

    /// The three retention points swept in the paper (Table 5.4).
    #[must_use]
    pub fn paper_sweep() -> [RetentionConfig; 3] {
        [
            Self::microseconds_50(),
            Self::microseconds_100(),
            Self::microseconds_200(),
        ]
    }

    /// The retention period as a wall-clock duration.
    #[must_use]
    pub fn retention(&self) -> SimDuration {
        self.retention
    }

    /// The clock frequency used to convert to cycles.
    #[must_use]
    pub fn frequency(&self) -> Freq {
        self.frequency
    }

    /// The line retention period in cycles.
    #[must_use]
    pub fn line_retention_cycles(&self) -> Cycle {
        self.frequency.cycles_in(self.retention)
    }

    /// The sentry-bit retention period in cycles for a cache whose refresh
    /// controller may have to service up to `max_simultaneous_firings`
    /// interrupts back to back (the paper's most conservative assumption is
    /// one per line in the cache).
    ///
    /// # Errors
    ///
    /// Returns [`EdramError::InvalidRetention`] if the margin consumes the
    /// entire retention period (the sentry bit would decay immediately).
    pub fn sentry_retention_cycles(
        &self,
        max_simultaneous_firings: u64,
    ) -> Result<Cycle, EdramError> {
        let line = self.line_retention_cycles();
        let margin = Cycle::new(max_simultaneous_firings);
        if margin >= line {
            return Err(EdramError::InvalidRetention {
                reason: format!(
                    "sentry margin of {max_simultaneous_firings} cycles consumes the whole \
                     {line} retention period"
                ),
            });
        }
        Ok(line - margin)
    }

    /// Scales the retention for a different operating temperature, using the
    /// exponential model `t_ret(T) = t_ret(T0) * exp(-k * (T - T0))` with the
    /// conventional retention-halves-every-10-K slope. This mirrors the
    /// paper's argument that a low-voltage, low-frequency chip runs cooler
    /// than 105 °C and therefore retains data longer.
    #[must_use]
    pub fn scaled_to_temperature(&self, reference_kelvin: f64, target_kelvin: f64) -> Self {
        let halvings = (target_kelvin - reference_kelvin) / 10.0;
        let factor = 0.5f64.powf(halvings);
        let new_picos = (self.retention.as_picos() as f64 * factor).max(1.0) as u128;
        RetentionConfig {
            retention: SimDuration::from_picos(new_picos),
            frequency: self.frequency,
        }
    }
}

impl Default for RetentionConfig {
    /// The paper's headline evaluation point: 50 µs at 1 GHz.
    fn default() -> Self {
        Self::microseconds_50()
    }
}

impl fmt::Display for RetentionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} us retention @ {}",
            self.retention.as_micros(),
            self.frequency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_points_convert_to_cycles() {
        assert_eq!(
            RetentionConfig::microseconds_50().line_retention_cycles(),
            Cycle::new(50_000)
        );
        assert_eq!(
            RetentionConfig::microseconds_100().line_retention_cycles(),
            Cycle::new(100_000)
        );
        assert_eq!(
            RetentionConfig::microseconds_200().line_retention_cycles(),
            Cycle::new(200_000)
        );
        assert_eq!(RetentionConfig::paper_sweep().len(), 3);
        assert_eq!(
            RetentionConfig::default(),
            RetentionConfig::microseconds_50()
        );
    }

    #[test]
    fn sentry_margin_matches_paper_l3_example() {
        // "we assume the retention period of the Sentry bit to be 16 us
        //  (@1GHz) less than that of rest of the eDRAM cells" for a 16K-line
        //  L3 bank.
        let r = RetentionConfig::microseconds_50();
        let sentry = r.sentry_retention_cycles(16 * 1024).unwrap();
        assert_eq!(sentry, Cycle::new(50_000 - 16_384));
    }

    #[test]
    fn sentry_margin_cannot_exceed_retention() {
        let r = RetentionConfig::microseconds_50();
        assert!(r.sentry_retention_cycles(50_000).is_err());
        assert!(r.sentry_retention_cycles(49_999).is_ok());
    }

    #[test]
    fn invalid_retention_rejected() {
        let err = RetentionConfig::new(SimDuration::from_picos(10), Freq::gigahertz(1));
        assert!(err.is_err());
        let ok = RetentionConfig::new(SimDuration::from_micros(1), Freq::gigahertz(1));
        assert!(ok.is_ok());
    }

    #[test]
    fn temperature_scaling_is_exponential() {
        let base = RetentionConfig::microseconds_50();
        // 10 K hotter halves retention; 20 K cooler quadruples it.
        let hotter = base.scaled_to_temperature(330.0, 340.0);
        assert_eq!(hotter.retention().as_micros(), 25);
        let cooler = base.scaled_to_temperature(330.0, 310.0);
        assert_eq!(cooler.retention().as_micros(), 200);
        // Same temperature: unchanged.
        let same = base.scaled_to_temperature(330.0, 330.0);
        assert_eq!(same.retention(), base.retention());
    }

    #[test]
    fn display_is_informative() {
        let s = RetentionConfig::microseconds_100().to_string();
        assert!(s.contains("100"));
        assert!(s.contains("GHz"));
    }
}
