//! The lazy decay-schedule algebra.
//!
//! Between two touches of a line, everything the refresh machinery does to it
//! is fully determined by the policy, the retention parameters and the
//! line's state at the last touch:
//!
//! * Refrint opportunities occur every sentry period after the touch;
//!   Periodic opportunities occur at global period boundaries.
//! * The data policy turns each opportunity into a refresh, a write-back
//!   (dirty lines whose budget expired) or an invalidation (clean lines whose
//!   budget expired).
//!
//! [`DecaySchedule::settle`] therefore computes, in O(1), how many refreshes
//! a line received in an interval, whether and when it was written back, and
//! whether and when it was invalidated. The CMP simulator calls it whenever a
//! line is touched, evicted, invalidated by coherence, or at the end of the
//! simulation; [`crate::exact`] provides an event-per-opportunity reference
//! implementation that the tests check this algebra against.

use refrint_engine::time::Cycle;

use crate::policy::{RefreshPolicy, TimePolicy};

/// The residency state of a line as far as refresh is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineKind {
    /// Valid and dirty with respect to the next level.
    Dirty,
    /// Valid and clean.
    Clean,
    /// Not holding valid data.
    Invalid,
}

/// What happened to an untouched line over a settlement interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Settlement {
    /// Number of line refreshes charged (the write-back's implicit refresh is
    /// *not* included; the write-back itself is reported separately).
    pub refreshes: u64,
    /// When the line was written back (dirty → clean), if that happened
    /// within the interval.
    pub writeback_at: Option<Cycle>,
    /// When the line was invalidated, if that happened within the interval.
    pub invalidated_at: Option<Cycle>,
    /// The line's state at the end of the interval.
    pub final_kind: LineKind,
}

impl Settlement {
    /// A settlement in which nothing happened.
    #[must_use]
    pub const fn nothing(kind: LineKind) -> Self {
        Settlement {
            refreshes: 0,
            writeback_at: None,
            invalidated_at: None,
            final_kind: kind,
        }
    }

    /// Whether the line survived the interval with valid data.
    #[must_use]
    pub const fn survived(&self) -> bool {
        !matches!(self.final_kind, LineKind::Invalid)
    }
}

/// The decay/refresh schedule for one cache level under one policy and one
/// retention configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecaySchedule {
    policy: RefreshPolicy,
    /// Line retention period (Periodic refresh interval).
    retention: Cycle,
    /// Sentry-bit retention period (Refrint refresh interval).
    sentry_period: Cycle,
    /// Phase offset of the Periodic boundaries (used to stagger banks).
    periodic_offset: Cycle,
}

impl DecaySchedule {
    /// Creates a schedule.
    ///
    /// `sentry_margin` is the number of cycles by which the sentry bit decays
    /// earlier than the line (the paper's bound: the maximum number of
    /// simultaneously-firing sentry bits).
    ///
    /// # Panics
    ///
    /// Panics if the margin is not smaller than the retention period, or if
    /// the retention period is zero.
    #[must_use]
    pub fn new(
        policy: RefreshPolicy,
        retention: Cycle,
        sentry_margin: Cycle,
        periodic_offset: Cycle,
    ) -> Self {
        assert!(retention > Cycle::ZERO, "retention must be non-zero");
        assert!(
            sentry_margin < retention,
            "sentry margin must be smaller than the retention period"
        );
        DecaySchedule {
            policy,
            retention,
            sentry_period: retention - sentry_margin,
            periodic_offset: periodic_offset % retention,
        }
    }

    /// The policy this schedule implements.
    #[must_use]
    pub const fn policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// The line retention period.
    #[must_use]
    pub const fn retention(&self) -> Cycle {
        self.retention
    }

    /// The interval between successive refresh opportunities for an idle
    /// line: the sentry period for Refrint, the retention period for
    /// Periodic.
    #[must_use]
    pub const fn opportunity_period(&self) -> Cycle {
        match self.policy.time {
            TimePolicy::Periodic => self.retention,
            TimePolicy::Refrint => self.sentry_period,
        }
    }

    /// The `k`-th (1-based) refresh opportunity strictly after a touch at
    /// `touch`.
    #[must_use]
    pub fn opportunity(&self, touch: Cycle, k: u64) -> Cycle {
        debug_assert!(k >= 1, "opportunities are 1-based");
        match self.policy.time {
            TimePolicy::Refrint => touch + self.sentry_period * k,
            TimePolicy::Periodic => {
                // First boundary strictly after `touch`, then every period.
                let rel = touch.saturating_sub(self.periodic_offset);
                let periods_elapsed = rel.div_span(self.retention);
                self.periodic_offset + self.retention * (periods_elapsed + k)
            }
        }
    }

    /// Number of refresh opportunities in the half-open interval
    /// `(touch, until]`.
    #[must_use]
    pub fn opportunities_between(&self, touch: Cycle, until: Cycle) -> u64 {
        if until <= touch {
            return 0;
        }
        let first = self.opportunity(touch, 1);
        if first > until {
            return 0;
        }
        1 + (until - first).div_span(self.opportunity_period())
    }

    /// Settles a line of kind `kind`, last touched at `touch`, over the
    /// interval `(touch, until]`.
    ///
    /// Invalid lines only accrue refreshes under the `All` data policy (a
    /// naive eDRAM controller refreshes every physical line); under every
    /// other policy they are untouched.
    #[must_use]
    pub fn settle(&self, kind: LineKind, touch: Cycle, until: Cycle) -> Settlement {
        let total = self.opportunities_between(touch, until);
        if total == 0 {
            return Settlement::nothing(kind);
        }
        match kind {
            LineKind::Invalid => {
                if self.policy.data.refreshes_invalid_lines() {
                    Settlement {
                        refreshes: total,
                        writeback_at: None,
                        invalidated_at: None,
                        final_kind: LineKind::Invalid,
                    }
                } else {
                    Settlement::nothing(LineKind::Invalid)
                }
            }
            LineKind::Clean => self.settle_clean(touch, total),
            LineKind::Dirty => self.settle_dirty(touch, total),
        }
    }

    fn settle_clean(&self, touch: Cycle, total: u64) -> Settlement {
        match self.policy.data.clean_budget() {
            None => Settlement {
                refreshes: total,
                writeback_at: None,
                invalidated_at: None,
                final_kind: LineKind::Clean,
            },
            Some(m) => {
                let m = u64::from(m);
                let refreshes = total.min(m);
                if total > m {
                    Settlement {
                        refreshes,
                        writeback_at: None,
                        invalidated_at: Some(self.opportunity(touch, m + 1)),
                        final_kind: LineKind::Invalid,
                    }
                } else {
                    Settlement {
                        refreshes,
                        writeback_at: None,
                        invalidated_at: None,
                        final_kind: LineKind::Clean,
                    }
                }
            }
        }
    }

    fn settle_dirty(&self, touch: Cycle, total: u64) -> Settlement {
        match self.policy.data.dirty_budget() {
            None => Settlement {
                refreshes: total,
                writeback_at: None,
                invalidated_at: None,
                final_kind: LineKind::Dirty,
            },
            Some(n) => {
                let n = u64::from(n);
                let dirty_refreshes = total.min(n);
                if total < n + 1 {
                    return Settlement {
                        refreshes: dirty_refreshes,
                        writeback_at: None,
                        invalidated_at: None,
                        final_kind: LineKind::Dirty,
                    };
                }
                // The (n+1)-th opportunity writes the line back; it then
                // behaves as a clean line with a fresh clean budget.
                let writeback_at = self.opportunity(touch, n + 1);
                let remaining = total - (n + 1);
                let m = self
                    .policy
                    .data
                    .clean_budget()
                    .map(u64::from)
                    .unwrap_or(u64::MAX);
                let clean_refreshes = remaining.min(m);
                if m != u64::MAX && remaining > m {
                    Settlement {
                        refreshes: dirty_refreshes + clean_refreshes,
                        writeback_at: Some(writeback_at),
                        invalidated_at: Some(self.opportunity(touch, n + 1 + m + 1)),
                        final_kind: LineKind::Invalid,
                    }
                } else {
                    Settlement {
                        refreshes: dirty_refreshes + clean_refreshes,
                        writeback_at: Some(writeback_at),
                        invalidated_at: None,
                        final_kind: LineKind::Clean,
                    }
                }
            }
        }
    }

    /// The cycle at which an idle line of kind `kind`, last touched at
    /// `touch`, will be invalidated — or `None` if the policy never
    /// invalidates it.
    #[must_use]
    pub fn invalidation_time(&self, kind: LineKind, touch: Cycle) -> Option<Cycle> {
        match kind {
            LineKind::Invalid => None,
            LineKind::Clean => self
                .policy
                .data
                .clean_budget()
                .map(|m| self.opportunity(touch, u64::from(m) + 1)),
            LineKind::Dirty => match (
                self.policy.data.dirty_budget(),
                self.policy.data.clean_budget(),
            ) {
                (Some(n), Some(m)) => {
                    Some(self.opportunity(touch, u64::from(n) + 1 + u64::from(m) + 1))
                }
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DataPolicy, TimePolicy};

    fn refrint(data: DataPolicy) -> DecaySchedule {
        DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, data),
            Cycle::new(1000),
            Cycle::new(100),
            Cycle::ZERO,
        )
    }

    fn periodic(data: DataPolicy) -> DecaySchedule {
        DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Periodic, data),
            Cycle::new(1000),
            Cycle::new(100),
            Cycle::ZERO,
        )
    }

    #[test]
    fn refrint_opportunities_follow_the_touch() {
        let s = refrint(DataPolicy::Valid);
        // Sentry period = 900.
        assert_eq!(s.opportunity(Cycle::new(50), 1), Cycle::new(950));
        assert_eq!(s.opportunity(Cycle::new(50), 3), Cycle::new(2750));
        assert_eq!(s.opportunities_between(Cycle::new(50), Cycle::new(949)), 0);
        assert_eq!(s.opportunities_between(Cycle::new(50), Cycle::new(950)), 1);
        assert_eq!(s.opportunities_between(Cycle::new(50), Cycle::new(2750)), 3);
    }

    #[test]
    fn periodic_opportunities_are_global_boundaries() {
        let s = periodic(DataPolicy::Valid);
        // Boundaries at 1000, 2000, 3000 ... regardless of the touch time.
        assert_eq!(s.opportunity(Cycle::new(50), 1), Cycle::new(1000));
        assert_eq!(s.opportunity(Cycle::new(999), 1), Cycle::new(1000));
        assert_eq!(s.opportunity(Cycle::new(1000), 1), Cycle::new(2000));
        assert_eq!(s.opportunity(Cycle::new(50), 2), Cycle::new(2000));
        assert_eq!(
            s.opportunities_between(Cycle::new(999), Cycle::new(3000)),
            3
        );
    }

    #[test]
    fn periodic_offset_staggers_boundaries() {
        let s = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Valid),
            Cycle::new(1000),
            Cycle::new(0),
            Cycle::new(250),
        );
        assert_eq!(s.opportunity(Cycle::new(0), 1), Cycle::new(1250));
        assert_eq!(s.opportunity(Cycle::new(1250), 1), Cycle::new(2250));
        assert_eq!(s.opportunity(Cycle::new(1300), 1), Cycle::new(2250));
    }

    #[test]
    fn periodic_refreshes_a_just_touched_line_refrint_does_not() {
        // This is the key wastefulness of Periodic that the paper calls out:
        // a line touched just before a boundary is refreshed immediately.
        let p = periodic(DataPolicy::Valid);
        let r = refrint(DataPolicy::Valid);
        let touch = Cycle::new(999);
        let until = Cycle::new(1100);
        assert_eq!(p.settle(LineKind::Clean, touch, until).refreshes, 1);
        assert_eq!(r.settle(LineKind::Clean, touch, until).refreshes, 0);
    }

    #[test]
    fn valid_policy_refreshes_forever_without_evicting() {
        let s = refrint(DataPolicy::Valid);
        let out = s.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(90_000));
        assert_eq!(out.refreshes, 100);
        assert_eq!(out.writeback_at, None);
        assert_eq!(out.invalidated_at, None);
        assert_eq!(out.final_kind, LineKind::Clean);
        let out = s.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(90_000));
        assert_eq!(out.refreshes, 100);
        assert_eq!(out.final_kind, LineKind::Dirty);
    }

    #[test]
    fn dirty_policy_invalidates_clean_lines_at_first_opportunity() {
        let s = refrint(DataPolicy::Dirty);
        let out = s.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(10_000));
        assert_eq!(out.refreshes, 0);
        assert_eq!(out.invalidated_at, Some(Cycle::new(900)));
        assert_eq!(out.final_kind, LineKind::Invalid);
        // Dirty lines are refreshed forever under Dirty.
        let out = s.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(10_000));
        assert_eq!(out.invalidated_at, None);
        assert_eq!(out.final_kind, LineKind::Dirty);
    }

    #[test]
    fn wb_policy_dirty_line_lifecycle() {
        // WB(2,3), sentry period 900: refreshes at 900, 1800; write-back at
        // 2700; clean refreshes at 3600, 4500, 5400; invalidation at 6300.
        let s = refrint(DataPolicy::write_back(2, 3));
        let full = s.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(100_000));
        assert_eq!(full.refreshes, 2 + 3);
        assert_eq!(full.writeback_at, Some(Cycle::new(2700)));
        assert_eq!(full.invalidated_at, Some(Cycle::new(6300)));
        assert_eq!(full.final_kind, LineKind::Invalid);

        // Truncated before the write-back.
        let early = s.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(2000));
        assert_eq!(early.refreshes, 2);
        assert_eq!(early.writeback_at, None);
        assert_eq!(early.final_kind, LineKind::Dirty);

        // Truncated between write-back and invalidation.
        let mid = s.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(4000));
        assert_eq!(mid.refreshes, 3);
        assert_eq!(mid.writeback_at, Some(Cycle::new(2700)));
        assert_eq!(mid.invalidated_at, None);
        assert_eq!(mid.final_kind, LineKind::Clean);
    }

    #[test]
    fn wb_policy_clean_line_lifecycle() {
        let s = refrint(DataPolicy::write_back(2, 3));
        let full = s.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(100_000));
        assert_eq!(full.refreshes, 3);
        assert_eq!(full.writeback_at, None);
        assert_eq!(full.invalidated_at, Some(Cycle::new(3600)));
        assert_eq!(full.final_kind, LineKind::Invalid);
    }

    #[test]
    fn wb_0_0_discards_immediately() {
        let s = refrint(DataPolicy::write_back(0, 0));
        let dirty = s.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(100_000));
        assert_eq!(dirty.refreshes, 0);
        assert_eq!(dirty.writeback_at, Some(Cycle::new(900)));
        assert_eq!(dirty.invalidated_at, Some(Cycle::new(1800)));
        let clean = s.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(100_000));
        assert_eq!(clean.refreshes, 0);
        assert_eq!(clean.invalidated_at, Some(Cycle::new(900)));
    }

    #[test]
    fn dirty_equals_wb_inf_0_and_valid_equals_wb_inf_inf() {
        let horizon = Cycle::new(500_000);
        let dirty_policy = refrint(DataPolicy::Dirty);
        let wb_inf_0 = refrint(DataPolicy::write_back(u32::MAX, 0));
        let valid = refrint(DataPolicy::Valid);
        let wb_inf_inf = refrint(DataPolicy::write_back(u32::MAX, u32::MAX));
        for kind in [LineKind::Dirty, LineKind::Clean] {
            // With budgets far beyond the horizon, the settlements coincide.
            let a = dirty_policy.settle(kind, Cycle::ZERO, horizon);
            let b = wb_inf_0.settle(kind, Cycle::ZERO, horizon);
            assert_eq!(a, b, "Dirty vs WB(inf,0) for {kind:?}");
            let a = valid.settle(kind, Cycle::ZERO, horizon);
            let b = wb_inf_inf.settle(kind, Cycle::ZERO, horizon);
            assert_eq!(a, b, "Valid vs WB(inf,inf) for {kind:?}");
        }
    }

    #[test]
    fn invalid_lines_only_refreshed_under_all() {
        let all = refrint(DataPolicy::All);
        let valid = refrint(DataPolicy::Valid);
        let out = all.settle(LineKind::Invalid, Cycle::ZERO, Cycle::new(9_000));
        assert_eq!(out.refreshes, 10);
        let out = valid.settle(LineKind::Invalid, Cycle::ZERO, Cycle::new(9_000));
        assert_eq!(out.refreshes, 0);
    }

    #[test]
    fn empty_interval_settles_to_nothing() {
        let s = refrint(DataPolicy::write_back(4, 4));
        for kind in [LineKind::Dirty, LineKind::Clean, LineKind::Invalid] {
            let out = s.settle(kind, Cycle::new(100), Cycle::new(100));
            assert_eq!(out, Settlement::nothing(kind));
            let out = s.settle(kind, Cycle::new(100), Cycle::new(50));
            assert_eq!(out, Settlement::nothing(kind));
        }
    }

    #[test]
    fn invalidation_time_matches_settlement() {
        let s = refrint(DataPolicy::write_back(4, 4));
        let t = s.invalidation_time(LineKind::Dirty, Cycle::ZERO).unwrap();
        let settled = s.settle(LineKind::Dirty, Cycle::ZERO, t);
        assert_eq!(settled.invalidated_at, Some(t));
        assert_eq!(
            s.invalidation_time(LineKind::Clean, Cycle::ZERO).unwrap(),
            Cycle::new(900 * 5)
        );
        assert_eq!(s.invalidation_time(LineKind::Invalid, Cycle::ZERO), None);
        assert_eq!(
            refrint(DataPolicy::Valid).invalidation_time(LineKind::Dirty, Cycle::ZERO),
            None
        );
        // Dirty policy never invalidates dirty lines but kills clean ones.
        assert_eq!(
            refrint(DataPolicy::Dirty).invalidation_time(LineKind::Dirty, Cycle::ZERO),
            None
        );
        assert_eq!(
            refrint(DataPolicy::Dirty).invalidation_time(LineKind::Clean, Cycle::ZERO),
            Some(Cycle::new(900))
        );
    }

    #[test]
    fn refrint_never_refreshes_more_than_periodic_needs_for_idle_lines() {
        // Over a long window an idle line is refreshed every sentry period
        // under Refrint (slightly more often than every retention period) —
        // but Periodic additionally refreshes lines right after they are
        // touched. For a line touched frequently, Refrint does strictly
        // better. Here: touch every 800 cycles < sentry period, so Refrint
        // performs zero refreshes while Periodic still refreshes each period.
        let p = periodic(DataPolicy::Valid);
        let r = refrint(DataPolicy::Valid);
        let mut p_total = 0;
        let mut r_total = 0;
        let mut touch = Cycle::ZERO;
        while touch < Cycle::new(50_000) {
            let next = touch + Cycle::new(800);
            p_total += p.settle(LineKind::Clean, touch, next).refreshes;
            r_total += r.settle(LineKind::Clean, touch, next).refreshes;
            touch = next;
        }
        assert_eq!(r_total, 0);
        assert!(p_total >= 49);
    }

    #[test]
    #[should_panic(expected = "margin must be smaller")]
    fn margin_larger_than_retention_panics() {
        let _ = DecaySchedule::new(
            RefreshPolicy::default(),
            Cycle::new(100),
            Cycle::new(100),
            Cycle::ZERO,
        );
    }
}
