//! Sentry-bit grouping and the priority-encoder service model.
//!
//! Each line has a Sentry bit that decays earlier than the line and raises an
//! interrupt. To bound the number of wires into the cache controller, sentry
//! bits are grouped and the group interrupt lines feed a priority encoder
//! which serialises them, one per cycle (Section 4). The paper's evaluation
//! groups sentry bits so that at most 1024 wires reach the encoder: group
//! size 1 for the 512-line L1s, 4 for the 4096-line L2, 16 for the
//! 16K-line L3 bank.

use refrint_engine::time::Cycle;

use crate::error::EdramError;

/// Configuration of the sentry-bit interrupt logic for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentryGroupConfig {
    /// Total number of lines in the cache (or bank).
    pub lines: u64,
    /// Number of sentry bits ganged onto one interrupt wire.
    pub group_size: u64,
    /// Maximum number of interrupt wires the priority encoder accepts.
    pub max_encoder_inputs: u64,
}

impl SentryGroupConfig {
    /// Derives the paper's grouping: the smallest power-of-two group size
    /// such that the number of interrupt wires does not exceed
    /// `max_encoder_inputs` (1024 in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`EdramError::InvalidSentryConfig`] if `lines` or
    /// `max_encoder_inputs` is zero.
    pub fn for_cache(lines: u64, max_encoder_inputs: u64) -> Result<Self, EdramError> {
        if lines == 0 || max_encoder_inputs == 0 {
            return Err(EdramError::InvalidSentryConfig {
                reason: "lines and encoder inputs must be non-zero".to_owned(),
            });
        }
        let mut group_size = 1u64;
        while lines.div_ceil(group_size) > max_encoder_inputs {
            group_size *= 2;
        }
        Ok(SentryGroupConfig {
            lines,
            group_size,
            max_encoder_inputs,
        })
    }

    /// The paper's encoder width: 1024 inputs.
    pub const PAPER_MAX_ENCODER_INPUTS: u64 = 1024;

    /// Number of interrupt wires reaching the priority encoder.
    #[must_use]
    pub fn encoder_inputs(&self) -> u64 {
        self.lines.div_ceil(self.group_size)
    }

    /// Cycles needed to service one group interrupt: the controller walks
    /// every line in the group, one per cycle, in a pipelined fashion.
    #[must_use]
    pub fn service_cycles_per_group(&self) -> Cycle {
        Cycle::new(self.group_size)
    }

    /// The worst-case number of back-to-back line services if every sentry
    /// bit in the cache fires simultaneously — this is the paper's
    /// conservative sentry-margin bound.
    #[must_use]
    pub fn worst_case_backlog(&self) -> Cycle {
        Cycle::new(self.lines)
    }

    /// The refresh-bandwidth fraction consumed if `refreshes` line services
    /// happen over `window` cycles (used by the contention model).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn utilisation(&self, refreshes: u64, window: Cycle) -> f64 {
        assert!(window > Cycle::ZERO, "window must be non-zero");
        refreshes as f64 / window.raw() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_group_sizes() {
        // L1: 512 lines -> group size 1, 512 encoder inputs.
        let l1 =
            SentryGroupConfig::for_cache(512, SentryGroupConfig::PAPER_MAX_ENCODER_INPUTS).unwrap();
        assert_eq!(l1.group_size, 1);
        assert_eq!(l1.encoder_inputs(), 512);
        // L2: 4096 lines -> group size 4, 1024 inputs.
        let l2 = SentryGroupConfig::for_cache(4096, 1024).unwrap();
        assert_eq!(l2.group_size, 4);
        assert_eq!(l2.encoder_inputs(), 1024);
        // L3 bank: 16K lines -> group size 16, 1024 inputs.
        let l3 = SentryGroupConfig::for_cache(16 * 1024, 1024).unwrap();
        assert_eq!(l3.group_size, 16);
        assert_eq!(l3.encoder_inputs(), 1024);
    }

    #[test]
    fn encoder_inputs_never_exceed_limit() {
        for lines in [1u64, 3, 512, 1000, 4096, 16 * 1024, 100_000] {
            for limit in [1u64, 16, 1024] {
                let cfg = SentryGroupConfig::for_cache(lines, limit).unwrap();
                assert!(
                    cfg.encoder_inputs() <= limit,
                    "lines={lines} limit={limit} inputs={}",
                    cfg.encoder_inputs()
                );
            }
        }
    }

    #[test]
    fn service_and_backlog_cycles() {
        let l3 = SentryGroupConfig::for_cache(16 * 1024, 1024).unwrap();
        assert_eq!(l3.service_cycles_per_group(), Cycle::new(16));
        // Worst case backlog for the L3 bank is 16K cycles = the 16 us margin
        // the paper quotes at 1 GHz.
        assert_eq!(l3.worst_case_backlog(), Cycle::new(16 * 1024));
    }

    #[test]
    fn utilisation_fraction() {
        let cfg = SentryGroupConfig::for_cache(512, 1024).unwrap();
        let u = cfg.utilisation(512, Cycle::new(50_000));
        assert!((u - 512.0 / 50_000.0).abs() < 1e-12);
    }

    #[test]
    fn zero_inputs_rejected() {
        assert!(SentryGroupConfig::for_cache(0, 1024).is_err());
        assert!(SentryGroupConfig::for_cache(512, 0).is_err());
    }
}
