//! eDRAM retention and intelligent-refresh policies — the paper's core
//! contribution.
//!
//! A full-eDRAM cache hierarchy must refresh every line once per retention
//! period or lose its contents. The paper proposes *Refrint*: a per-line
//! Sentry bit that decays slightly earlier than the line and interrupts the
//! cache controller exactly when a refresh is needed, combined with
//! *data policies* that decide whether a line is worth refreshing at all
//! (Table 3.1):
//!
//! | Time policy | When are refresh opportunities? |
//! |---|---|
//! | `Periodic` | At fixed period boundaries, a group of lines at a time |
//! | `Refrint`  | When the line's Sentry bit decays (one retention after its last touch, minus a safety margin) |
//!
//! | Data policy | What happens at an opportunity? |
//! |---|---|
//! | `All`   | refresh unconditionally (even invalid lines) |
//! | `Valid` | refresh valid lines, do nothing for invalid ones |
//! | `Dirty` | refresh dirty lines; invalidate valid-clean lines |
//! | `WB(n,m)` | refresh a dirty line `n` times, then write it back; refresh a clean line `m` times, then invalidate it |
//!
//! Module map:
//!
//! * [`retention`] — retention periods, temperature scaling, sentry margins.
//! * [`policy`] — the time/data policy types, parsing and the 42-point sweep.
//! * [`model`] — the open [`RefreshPolicyModel`] trait behind all policies,
//!   plus [`PolicyFactory`] and the label [`PolicyRegistry`] through which
//!   custom user policies plug into the simulator and the sweep runner.
//! * [`schedule`] — the *lazy decay-schedule algebra*: everything that
//!   happens to an untouched line between two touches is deterministic, so
//!   refresh counts, write-back times and invalidation times are computed in
//!   O(1) when the line is next touched (or at end of simulation).
//! * [`sentry`] — sentry-bit grouping and the priority-encoder service model.
//! * [`controller`] — periodic group-burst blocking and Refrint interrupt
//!   contention, the two execution-time costs of refreshing.
//! * [`exact`] — a straightforward event-per-opportunity reference
//!   implementation used to cross-validate the lazy algebra in tests.
//!
//! # Example
//!
//! ```
//! use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
//! use refrint_edram::retention::RetentionConfig;
//! use refrint_edram::schedule::{DecaySchedule, LineKind};
//! use refrint_engine::time::Cycle;
//!
//! let policy = RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(4, 4));
//! let retention = RetentionConfig::microseconds_50();
//! let schedule = DecaySchedule::new(policy, retention.line_retention_cycles(), Cycle::new(1_000), Cycle::ZERO);
//! // A dirty line touched at cycle 0 and never touched again is written back
//! // after 5 opportunities and invalidated after 10.
//! let s = schedule.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(10_000_000));
//! assert!(s.writeback_at.is_some());
//! assert!(s.invalidated_at.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod error;
pub mod exact;
pub mod model;
pub mod policy;
pub mod retention;
pub mod schedule;
pub mod sentry;
pub mod variation;

pub use controller::{PeriodicBurstModel, RefrintContention};
pub use error::EdramError;
pub use model::{PolicyBinding, PolicyFactory, PolicyRegistry, RefreshAction, RefreshPolicyModel};
pub use policy::{DataPolicy, RefreshPolicy, TimePolicy};
pub use retention::RetentionConfig;
pub use schedule::{DecaySchedule, LineKind, Settlement};
pub use sentry::SentryGroupConfig;
pub use variation::RetentionProfile;
