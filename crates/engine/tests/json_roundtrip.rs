//! Property tests for `refrint_engine::json`: `parse(emit(v)) == v` over
//! generated `Value` trees, plus byte-offset assertions on malformed
//! inputs.
//!
//! Like the rest of the workspace these run on a deterministic in-repo
//! case generator (no `proptest` offline): every run explores the same
//! cases, and a failure prints the offending document.

use refrint_engine::json::{emit, parse, Value};
use refrint_engine::rng::DeterministicRng;

const CASES: u64 = 300;

/// Characters the string generator draws from: ASCII, escapes, control
/// characters, BMP unicode, and astral-plane characters that standard
/// serializers encode as surrogate pairs.
const CHARS: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1f}', 'é', 'Ω', '水',
    '\u{2028}', '😀', '𝄞', '🦀',
];

fn arbitrary_string(rng: &mut DeterministicRng) -> String {
    let len = rng.below(12);
    (0..len)
        .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize])
        .collect()
}

fn arbitrary_number(rng: &mut DeterministicRng) -> f64 {
    match rng.below(8) {
        0 => 0.0,
        1 => -0.0,
        2 => rng.below(1_000_000) as f64,
        3 => -(rng.below(1_000_000) as f64),
        // Extreme magnitudes, including subnormals and the f64 limits.
        4 => f64::MAX,
        5 => f64::MIN_POSITIVE / 8.0,
        6 => 1e308 * if rng.chance(0.5) { 1.0 } else { -1.0 },
        // Arbitrary bit patterns, rejecting non-finite values (emit maps
        // those to null by design).
        _ => {
            let f = f64::from_bits(rng.next_u64());
            if f.is_finite() {
                f
            } else {
                rng.below(1 << 53) as f64 / 7.0
            }
        }
    }
}

/// A random `Value` tree with bounded depth (deep nesting included: the
/// depth budget allows chains of ~8 containers).
fn arbitrary_value(rng: &mut DeterministicRng, depth: u64) -> Value {
    let leaf_only = depth >= 8;
    match rng.below(if leaf_only { 4 } else { 6 }) {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(0.5)),
        2 => Value::Num(arbitrary_number(rng)),
        3 => Value::Str(arbitrary_string(rng)),
        4 => {
            let n = rng.below(4);
            Value::Arr((0..n).map(|_| arbitrary_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.below(4);
            Value::Obj(
                (0..n)
                    .map(|i| {
                        // Distinct keys: `get` semantics are first-match,
                        // so duplicate keys would not round-trip as a map.
                        let key = format!("{}#{i}", arbitrary_string(rng));
                        (key, arbitrary_value(rng, depth + 1))
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn parse_emit_round_trips_generated_trees() {
    for case in 0..CASES {
        let mut rng = DeterministicRng::from_seed(0x5EED_1500).fork(case);
        let value = arbitrary_value(&mut rng, 0);
        let text = emit(&value);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(parsed, value, "case {case}: {text}");
    }
}

#[test]
fn deeply_nested_documents_round_trip() {
    // A 64-deep chain of arrays and objects.
    let mut v = Value::Num(42.0);
    for i in 0..64 {
        v = if i % 2 == 0 {
            Value::Arr(vec![v])
        } else {
            Value::Obj(vec![("k".to_owned(), v)])
        };
    }
    assert_eq!(parse(&emit(&v)).unwrap(), v);
}

#[test]
fn surrogate_pair_escapes_parse_to_astral_characters() {
    // Standard serializers encode non-BMP characters as \uD8xx\uDCxx.
    assert_eq!(
        parse("\"\\ud83d\\ude00\"").unwrap(),
        Value::Str("😀".to_owned())
    );
    assert_eq!(
        parse("\"\\uD834\\uDD1E\"").unwrap(),
        Value::Str("𝄞".to_owned())
    );
    // Our emitter writes astral characters raw; both spellings agree.
    assert_eq!(emit(&Value::Str("😀".to_owned())), "\"😀\"");
    // Lone surrogates are rejected with the offset of the escape.
    for doc in ["\"\\ud83d\"", "\"\\ude00 tail\"", "\"\\ud83d\\u0041\""] {
        let err = parse(doc).unwrap_err();
        assert!(err.reason.contains("surrogate"), "{doc}: {err}");
        assert!(err.offset < doc.len(), "{doc}: {err}");
    }
}

#[test]
fn extreme_numbers_round_trip() {
    for n in [
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        f64::EPSILON,
        -1e-308,
        9_007_199_254_740_993.0, // beyond 2^53: representable f64 nearby
        1.7976931348623157e308,
    ] {
        let v = Value::Num(n);
        assert_eq!(parse(&emit(&v)).unwrap(), v, "{n:e}");
    }
    // Non-finite numbers are lossy by design: they render as null.
    assert_eq!(emit(&Value::Num(f64::NAN)), "null");
    assert_eq!(emit(&Value::Num(f64::INFINITY)), "null");
}

#[test]
fn malformed_documents_report_the_offending_byte_offset() {
    // (document, expected offset, what should be wrong there)
    let cases: &[(&str, usize, &str)] = &[
        ("", 0, "end of input"),
        ("  {", 3, "expected"),
        ("[1, 2", 5, "expected"),
        ("{\"a\": }", 6, "unexpected"),
        ("{\"a\": 1,}", 8, "expected"),
        ("\"unterminated", 13, "unterminated"),
        ("[1] trailing", 4, "trailing"),
        ("nul", 0, "expected 'null'"),
        ("{\"a\" 1}", 5, "expected"),
        ("\"bad \\q escape\"", 6, "bad escape"),
        ("\"bad \\uZZZZ\"", 6, "\\u"),
    ];
    for (doc, offset, fragment) in cases {
        let err = parse(doc).unwrap_err();
        assert_eq!(
            err.offset, *offset,
            "`{doc}` reported {} ({})",
            err.offset, err.reason
        );
        assert!(
            err.reason.contains(fragment),
            "`{doc}`: reason `{}` lacks `{fragment}`",
            err.reason
        );
        assert!(err.to_string().contains("byte"), "{err}");
    }
}
