//! A deterministic discrete-event queue.
//!
//! Events are ordered by their scheduled [`Cycle`]; events scheduled for the
//! same cycle are delivered in FIFO insertion order, which keeps simulations
//! fully deterministic regardless of heap-internal tie breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::Cycle;

/// An event together with the cycle at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// Cycle at which the event fires.
    pub at: Cycle,
    /// Monotonic sequence number used to break ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

/// Internal heap entry: min-heap by (cycle, sequence).
struct HeapEntry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the earliest event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> fmt::Debug for HeapEntry<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeapEntry")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .finish()
    }
}

/// A deterministic event queue.
///
/// # Example
///
/// ```
/// use refrint_engine::event::EventQueue;
/// use refrint_engine::time::Cycle;
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule(Cycle::new(20), "later");
/// q.schedule(Cycle::new(5), "sooner");
/// q.schedule(Cycle::new(5), "sooner-second");
///
/// let first = q.pop().unwrap();
/// assert_eq!((first.at, first.event), (Cycle::new(5), "sooner"));
/// let second = q.pop().unwrap();
/// assert_eq!(second.event, "sooner-second");
/// assert_eq!(q.pop().unwrap().event, "later");
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at cycle zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// The current simulation time: the cycle of the most recently popped
    /// event (or zero if nothing has been popped yet).
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at cycle `at`.
    ///
    /// Scheduling in the past is permitted (the event will simply be the next
    /// one popped); callers that want to enforce causality should check
    /// [`EventQueue::now`] first.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` cycles after the current time.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Removes and returns the earliest pending event, advancing the clock to
    /// its cycle.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|e| {
            self.now = self.now.max(e.at);
            ScheduledEvent {
                at: e.at,
                seq: e.seq,
                event: e.event,
            }
        })
    }

    /// Returns the cycle of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drains and returns every event scheduled at the earliest pending
    /// cycle, in FIFO order.
    pub fn pop_batch(&mut self) -> Vec<ScheduledEvent<E>> {
        let Some(first_time) = self.peek_time() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while self.peek_time() == Some(first_time) {
            out.push(self.pop().expect("peeked event must exist"));
        }
        out
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_cycle() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), 3);
        q.schedule(Cycle::new(10), 1);
        q.schedule(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(5), ());
        q.schedule(Cycle::new(15), ());
        assert_eq!(q.now(), Cycle::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycle::new(5));
        q.pop();
        assert_eq!(q.now(), Cycle::new(15));
        // Popping an event scheduled in the past never rewinds the clock.
        q.schedule(Cycle::new(1), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(15));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(100), "a");
        q.pop();
        q.schedule_after(Cycle::new(10), "b");
        let e = q.pop().unwrap();
        assert_eq!(e.at, Cycle::new(110));
    }

    #[test]
    fn pop_batch_returns_all_at_earliest_cycle() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(4), 'a');
        q.schedule(Cycle::new(4), 'b');
        q.schedule(Cycle::new(9), 'c');
        let batch = q.pop_batch();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].event, 'a');
        assert_eq!(batch[1].event, 'b');
        assert_eq!(q.len(), 1);
        assert!(q.pop_batch().len() == 1);
        assert!(q.pop_batch().is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(1), ());
        q.schedule(Cycle::new(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
