//! Dependency-free JSON: string escaping, number rendering and a small
//! recursive-descent parser.
//!
//! The workspace builds offline (no serde), so every crate that speaks JSON
//! — the CLI emitters, the `BENCH_SIM.json` reader in `refrint-bench`, the
//! `refrint-serve` request parser — shares this one implementation. The
//! parser covers enough of RFC 8259 for the documents the suite exchanges
//! and reports malformed input as a typed [`JsonError`] carrying the
//! offending byte offset, never a panic.

use std::fmt;

/// Escapes `s` as the contents of a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
#[must_use]
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting is valid JSON.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders a [`Value`] as compact JSON text.
///
/// For any tree whose numbers are finite, `parse(&emit(v))` reconstructs
/// `v` exactly: strings round-trip through [`escape`], and numbers use
/// Rust's shortest-roundtrip float formatting. Non-finite numbers render
/// as `null` (JSON cannot represent them), which is the one lossy case.
#[must_use]
pub fn emit(value: &Value) -> String {
    match value {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => num(*n),
        Value::Str(s) => format!("\"{}\"", escape(s)),
        Value::Arr(items) => {
            let inner: Vec<String> = items.iter().map(emit).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), emit(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Why a JSON text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string (escapes already resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; fields keep their document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value of object field `key`, if this is an object that has it.
    #[must_use]
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is `true` or `false`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in document order, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if this is a non-negative
    /// number without a fractional part.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first offending input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected byte {c:#04x}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected '{text}'"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError {
                offset: start,
                reason: "non-UTF-8 number".to_owned(),
            })?
            .to_owned();
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => {
                self.pos = start;
                self.err(format!("invalid number '{text}'"))
            }
        }
    }

    /// Four hex digits starting at byte `at`, as a code unit.
    fn hex4(&self, at: usize) -> Option<u32> {
        self.bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let Some(unit) = self.hex4(self.pos + 1) else {
                                return self.err("bad \\u escape");
                            };
                            match unit {
                                // High surrogate: standard serializers
                                // encode non-BMP characters as a
                                // \uD8xx\uDCxx pair, so a low surrogate
                                // escape must follow.
                                0xD800..=0xDBFF => {
                                    let low = if self.bytes.get(self.pos + 5) == Some(&b'\\')
                                        && self.bytes.get(self.pos + 6) == Some(&b'u')
                                    {
                                        self.hex4(self.pos + 7)
                                    } else {
                                        None
                                    };
                                    match low {
                                        Some(low @ 0xDC00..=0xDFFF) => {
                                            let c =
                                                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                            out.push(
                                                char::from_u32(c)
                                                    .expect("combined surrogates are a scalar"),
                                            );
                                            self.pos += 10;
                                        }
                                        _ => return self.err("unpaired \\u surrogate"),
                                    }
                                }
                                0xDC00..=0xDFFF => return self.err("unpaired \\u surrogate"),
                                _ => {
                                    out.push(
                                        char::from_u32(unit)
                                            .expect("non-surrogate BMP code point is a scalar"),
                                    );
                                    self.pos += 4;
                                }
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            offset: self.pos,
                            reason: "non-UTF-8 string".to_owned(),
                        })?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn parses_every_value_kind() {
        let v = parse(
            "{\"s\": \"a\\u0041\", \"n\": -2.5e2, \"b\": true, \
             \"z\": null, \"a\": [1, 2], \"o\": {\"k\": false}}",
        )
        .unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA"));
        assert_eq!(v.get("n").and_then(Value::as_num), Some(-250.0));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("z"), Some(&Value::Null));
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert!(v.get("o").unwrap().get("k").is_some());
        assert_eq!(v.as_obj().map(<[(String, Value)]>::len), Some(6));
    }

    #[test]
    fn malformed_input_reports_the_offset() {
        let err = parse("{\"k\": ").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
        let err = parse("{}extra").unwrap_err();
        assert!(err.reason.contains("trailing"), "{err}");
        assert!(parse("[1, ]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12monkeys").is_err());
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn surrogate_pairs_decode_and_unpaired_surrogates_error() {
        // How serializers with ASCII-only output (e.g. Python json.dumps)
        // encode non-BMP characters.
        assert_eq!(
            parse("\"\\ud83d\\udcbe\"").unwrap().as_str(),
            Some("\u{1F4BE}")
        );
        assert_eq!(
            parse("\"a\\ud83d\\ude00b\"").unwrap().as_str(),
            Some("a😀b")
        );
        for bad in [
            "\"\\ud83d\"",        // lone high surrogate
            "\"\\ud83dxx\"",      // high surrogate not followed by \u
            "\"\\ud83d\\u0041\"", // high surrogate followed by non-low
            "\"\\udcbe\"",        // lone low surrogate
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.reason.contains("surrogate"), "{bad}: {err}");
        }
    }

    #[test]
    fn round_trips_escaped_strings() {
        let original = "quote\" slash\\ newline\n tab\t";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }
}
