//! Simulation statistics: counters, histograms and a named registry.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use refrint_engine::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter { value: 0 }
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// The current count.
    #[must_use]
    pub const fn value(&self) -> u64 {
        self.value
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// A fixed-bucket histogram of `u64` samples, plus running sum/min/max.
///
/// Bucket `i` covers `[bounds[i-1], bounds[i])`; the last bucket is
/// unbounded above. Used for latency and queue-depth distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Creates a histogram with exponentially growing bounds
    /// `1, 2, 4, ... 2^(n-1)`.
    #[must_use]
    pub fn exponential(n: u32) -> Self {
        let bounds: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
        Self::with_bounds(&bounds)
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = match self.bounds.binary_search(&sample) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded samples, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Minimum recorded sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum recorded sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Per-bucket counts (one more entry than bounds: the overflow bucket).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The bucket upper bounds this histogram was built with.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// An approximate p-quantile (0.0..=1.0) computed from bucket counts.
    ///
    /// Returns the upper bound of the bucket containing the quantile, which
    /// is precise enough for reporting latency tails. Degenerate requests
    /// are typed, not bogus: an empty histogram or a NaN `p` returns
    /// `None` (NaN used to slip through the clamp — `f64::clamp` passes
    /// NaN along — and came back as the first bucket's bound), and
    /// out-of-range `p` saturates to the nearest quantile.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || p.is_nan() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let target = (p * self.count as f64).ceil() as u64;
        let mut running = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            running += b;
            if running >= target.max(1) {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// An approximate percentile (`p` in `0..=100`), e.g. `percentile(99.0)`
    /// for the p99. A thin wrapper over [`Histogram::quantile`] for
    /// reporting code that speaks percentiles; inherits its degenerate-input
    /// guarantees (`None` on empty histograms and NaN, saturation beyond
    /// the 0–100 range).
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.quantile(p / 100.0)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::exponential(16)
    }
}

/// A named collection of counters, used by subsystems to expose statistics
/// uniformly to reports and tests.
///
/// Keys are ordered (`BTreeMap`) so reports are deterministic.
#[derive(Debug, Clone, Default)]
pub struct StatRegistry {
    counters: BTreeMap<String, Counter>,
}

impl StatRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        StatRegistry {
            counters: BTreeMap::new(),
        }
    }

    /// Adds `n` to the named counter, creating it if necessary.
    pub fn add(&mut self, name: &str, n: u64) {
        // Avoid allocating the key when the counter already exists; this is
        // on the simulator's per-access hot path.
        if let Some(c) = self.counters.get_mut(name) {
            c.add(n);
        } else {
            self.counters.insert(name.to_owned(), Counter { value: n });
        }
    }

    /// Increments the named counter by one, creating it if necessary.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Returns the value of the named counter (zero if it does not exist).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::value)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.value()))
    }

    /// Merges another registry into this one by summing counters.
    pub fn merge(&mut self, other: &StatRegistry) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of distinct counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the registry contains no counters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for StatRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<40} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(Counter::default().value(), 0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::with_bounds(&[10, 100, 1000]);
        for s in [1, 9, 10, 11, 99, 100, 5000] {
            h.record(s);
        }
        // Buckets: [0,10) -> {1,9}; [10,100) -> {10,11,99}; [100,1000) -> {100}; overflow -> {5000}
        assert_eq!(h.buckets(), &[2, 3, 1, 1]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5000));
        assert_eq!(h.sum(), 1 + 9 + 10 + 11 + 99 + 100 + 5000);
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = Histogram::exponential(10);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        for s in 0..100u64 {
            h.record(s);
        }
        let mean = h.mean().unwrap();
        assert!((mean - 49.5).abs() < 1e-9);
        assert!(h.quantile(0.5).unwrap() >= 32);
        assert!(h.quantile(1.0).unwrap() >= 64);
    }

    #[test]
    fn percentiles_match_quantiles() {
        let mut h = Histogram::exponential(10);
        assert_eq!(h.percentile(50.0), None);
        for s in 0..1000u64 {
            h.record(s);
        }
        assert_eq!(h.percentile(50.0), h.quantile(0.5));
        assert_eq!(h.percentile(99.0), h.quantile(0.99));
        assert_eq!(h.percentile(100.0), h.quantile(1.0));
        assert!(h.percentile(99.0).unwrap() <= h.percentile(100.0).unwrap());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unordered_bounds() {
        let _ = Histogram::with_bounds(&[5, 5]);
    }

    #[test]
    fn degenerate_quantile_requests_are_none_or_saturating() {
        // Regression: NaN slipped through `f64::clamp` (which propagates
        // NaN), made the rank target 0 and returned the first non-empty
        // bucket's bound as a bogus Some.
        let mut h = Histogram::with_bounds(&[10, 100]);
        for s in [1, 50, 99] {
            h.record(s);
        }
        assert_eq!(h.quantile(f64::NAN), None);
        assert_eq!(h.percentile(f64::NAN), None);
        // Out-of-range probabilities saturate instead of failing.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.percentile(250.0), h.percentile(100.0));
        // Empty histograms stay typed for every probability.
        let empty = Histogram::with_bounds(&[10]);
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.percentile(f64::NAN), None);
    }

    #[test]
    fn registry_accumulates_and_merges() {
        let mut a = StatRegistry::new();
        a.incr("l1.hits");
        a.add("l1.hits", 4);
        a.add("l1.misses", 2);
        assert_eq!(a.get("l1.hits"), 5);
        assert_eq!(a.get("unknown"), 0);

        let mut b = StatRegistry::new();
        b.add("l1.hits", 10);
        b.add("l2.hits", 7);
        a.merge(&b);
        assert_eq!(a.get("l1.hits"), 15);
        assert_eq!(a.get("l2.hits"), 7);
        assert_eq!(a.len(), 3);

        let names: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "iteration must be name-ordered");
    }

    #[test]
    fn registry_display_lists_all() {
        let mut r = StatRegistry::new();
        r.add("x", 1);
        r.add("y", 2);
        let s = r.to_string();
        assert!(s.contains('x') && s.contains('y'));
    }
}
