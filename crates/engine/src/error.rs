//! Error types for the simulation kernel.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulation kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A configuration value was outside its valid range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// The simulation exceeded its configured cycle budget.
    CycleBudgetExceeded {
        /// The budget that was exceeded, in cycles.
        budget: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for `{parameter}`: {reason}")
            }
            EngineError::CycleBudgetExceeded { budget } => {
                write!(f, "simulation exceeded its cycle budget of {budget}")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EngineError::InvalidConfig {
            parameter: "ways",
            reason: "must be a power of two".to_owned(),
        };
        assert!(e.to_string().contains("ways"));
        let e = EngineError::CycleBudgetExceeded { budget: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<EngineError>();
    }
}
