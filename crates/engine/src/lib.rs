//! Discrete-event simulation kernel for the Refrint reproduction.
//!
//! This crate provides the foundational building blocks shared by every other
//! crate in the workspace:
//!
//! * [`time`] — strongly-typed cycles, durations and frequencies. The whole
//!   simulator operates in processor cycles at a configurable frequency
//!   (1 GHz in the paper's configuration, so one cycle is one nanosecond).
//! * [`event`] — a deterministic event queue with stable FIFO ordering among
//!   events scheduled for the same cycle.
//! * [`stats`] — counters, histograms and a registry used to collect
//!   simulation statistics in a uniform way.
//! * [`rng`] — a deterministic, seedable random-number facade so that every
//!   simulation run is exactly reproducible.
//! * [`json`] — dependency-free JSON escaping, rendering helpers and a
//!   typed-error parser shared by every crate that emits or reads the
//!   suite's machine-readable documents.
//!
//! # Example
//!
//! ```
//! use refrint_engine::time::{Cycle, Freq, SimDuration};
//!
//! let f = Freq::gigahertz(1);
//! // 50 microseconds of retention time is 50,000 cycles at 1 GHz.
//! assert_eq!(f.cycles_in(SimDuration::from_micros(50)), Cycle::new(50_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod event;
pub mod json;
pub mod rng;
pub mod stats;
pub mod time;

pub use error::EngineError;
pub use event::{EventQueue, ScheduledEvent};
pub use rng::DeterministicRng;
pub use stats::{Counter, Histogram, StatRegistry};
pub use time::{Cycle, Freq, SimDuration};
