//! Time and frequency newtypes.
//!
//! The simulator operates in discrete processor cycles. The paper's
//! configuration runs at 1 GHz, so one cycle corresponds to one nanosecond,
//! but all conversions go through [`Freq`] so the frequency can be changed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time (or a span of time), measured in processor
/// cycles since the beginning of the simulation.
///
/// `Cycle` is used both as an absolute timestamp and as a span; arithmetic is
/// saturating-free and will panic on overflow in debug builds, like plain
/// integer arithmetic.
///
/// # Example
///
/// ```
/// use refrint_engine::time::Cycle;
/// let a = Cycle::new(10);
/// let b = Cycle::new(32);
/// assert_eq!(b - a, Cycle::new(22));
/// assert_eq!(a + Cycle::new(5), Cycle::new(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero cycle (simulation start).
    pub const ZERO: Cycle = Cycle(0);
    /// The maximum representable cycle; used as "never".
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: returns zero rather than underflowing.
    #[must_use]
    pub const fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }

    /// Saturating addition: clamps at [`Cycle::MAX`].
    #[must_use]
    pub const fn saturating_add(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_add(other.0))
    }

    /// Checked addition.
    #[must_use]
    pub const fn checked_add(self, other: Cycle) -> Option<Cycle> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(Cycle(v)),
            None => None,
        }
    }

    /// Returns the larger of two cycle values.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two cycle values.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Whether this is the sentinel "never" value.
    #[must_use]
    pub const fn is_never(self) -> bool {
        self.0 == u64::MAX
    }

    /// Multiplies a cycle span by an integer factor.
    #[must_use]
    pub const fn times(self, factor: u64) -> Cycle {
        Cycle(self.0 * factor)
    }

    /// Integer division of spans, returning how many `span`s fit in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    #[must_use]
    pub fn div_span(self, span: Cycle) -> u64 {
        assert!(span.0 != 0, "division by a zero-cycle span");
        self.0 / span.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycle {
    type Output = Cycle;
    fn mul(self, rhs: u64) -> Cycle {
        Cycle(self.0 * rhs)
    }
}

impl Div<u64> for Cycle {
    type Output = Cycle;
    fn div(self, rhs: u64) -> Cycle {
        Cycle(self.0 / rhs)
    }
}

impl Rem<Cycle> for Cycle {
    type Output = Cycle;
    fn rem(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 % rhs.0)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> Self {
        c.0
    }
}

/// A wall-clock duration of simulated time, independent of frequency.
///
/// Stored internally in picoseconds so that sub-nanosecond access times can
/// be expressed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    picos: u128,
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration { picos: 0 };

    /// Creates a duration from picoseconds.
    #[must_use]
    pub const fn from_picos(picos: u128) -> Self {
        SimDuration { picos }
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration {
            picos: nanos as u128 * 1_000,
        }
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration {
            picos: micros as u128 * 1_000_000,
        }
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            picos: millis as u128 * 1_000_000_000,
        }
    }

    /// Creates a duration from seconds (floating point, e.g. for reports).
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration {
            picos: (secs * 1e12) as u128,
        }
    }

    /// The duration in picoseconds.
    #[must_use]
    pub const fn as_picos(self) -> u128 {
        self.picos
    }

    /// The duration in nanoseconds (truncating).
    #[must_use]
    pub const fn as_nanos(self) -> u128 {
        self.picos / 1_000
    }

    /// The duration in microseconds (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u128 {
        self.picos / 1_000_000
    }

    /// The duration in seconds, as a float (for energy = power × time).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.picos as f64 * 1e-12
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            picos: self.picos + rhs.picos,
        }
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            picos: self.picos - rhs.picos,
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.picos >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.picos as f64 / 1e9)
        } else if self.picos >= 1_000_000 {
            write!(f, "{:.3} us", self.picos as f64 / 1e6)
        } else {
            write!(f, "{} ps", self.picos)
        }
    }
}

/// A clock frequency.
///
/// Used to convert between [`SimDuration`] wall-clock times (such as eDRAM
/// retention times expressed in microseconds) and [`Cycle`] counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq {
    hertz: u64,
}

impl Freq {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hertz` is zero.
    #[must_use]
    pub fn hertz(hertz: u64) -> Self {
        assert!(hertz > 0, "frequency must be non-zero");
        Freq { hertz }
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn megahertz(mhz: u64) -> Self {
        Freq::hertz(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    #[must_use]
    pub fn gigahertz(ghz: u64) -> Self {
        Freq::hertz(ghz * 1_000_000_000)
    }

    /// The frequency in hertz.
    #[must_use]
    pub const fn as_hertz(self) -> u64 {
        self.hertz
    }

    /// The period of one cycle.
    #[must_use]
    pub fn period(self) -> SimDuration {
        SimDuration::from_picos(1_000_000_000_000 / self.hertz as u128)
    }

    /// How many whole cycles elapse in `d` at this frequency.
    #[must_use]
    pub fn cycles_in(self, d: SimDuration) -> Cycle {
        let picos_per_cycle = 1_000_000_000_000u128 / self.hertz as u128;
        Cycle::new((d.as_picos() / picos_per_cycle) as u64)
    }

    /// The wall-clock duration of `c` cycles at this frequency.
    #[must_use]
    pub fn duration_of(self, c: Cycle) -> SimDuration {
        let picos_per_cycle = 1_000_000_000_000u128 / self.hertz as u128;
        SimDuration::from_picos(c.raw() as u128 * picos_per_cycle)
    }
}

impl Default for Freq {
    /// The paper's evaluation frequency: 1000 MHz.
    fn default() -> Self {
        Freq::gigahertz(1)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hertz.is_multiple_of(1_000_000_000) {
            write!(f, "{} GHz", self.hertz / 1_000_000_000)
        } else if self.hertz.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.hertz / 1_000_000)
        } else {
            write!(f, "{} Hz", self.hertz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle::new(100);
        let b = Cycle::new(40);
        assert_eq!(a + b, Cycle::new(140));
        assert_eq!(a - b, Cycle::new(60));
        assert_eq!(a * 3, Cycle::new(300));
        assert_eq!(a / 3, Cycle::new(33));
        assert_eq!(a % Cycle::new(30), Cycle::new(10));
        assert_eq!(b.saturating_sub(a), Cycle::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn cycle_div_span() {
        assert_eq!(Cycle::new(1000).div_span(Cycle::new(300)), 3);
        assert_eq!(Cycle::new(1000).div_span(Cycle::new(1000)), 1);
        assert_eq!(Cycle::new(999).div_span(Cycle::new(1000)), 0);
    }

    #[test]
    #[should_panic(expected = "zero-cycle span")]
    fn cycle_div_span_zero_panics() {
        let _ = Cycle::new(10).div_span(Cycle::ZERO);
    }

    #[test]
    fn cycle_sum_and_conversions() {
        let total: Cycle = [Cycle::new(1), Cycle::new(2), Cycle::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Cycle::new(6));
        assert_eq!(u64::from(Cycle::new(9)), 9);
        assert_eq!(Cycle::from(9u64), Cycle::new(9));
        assert!(Cycle::MAX.is_never());
        assert!(!Cycle::new(5).is_never());
    }

    #[test]
    fn duration_units() {
        assert_eq!(SimDuration::from_micros(50).as_nanos(), 50_000);
        assert_eq!(SimDuration::from_nanos(40).as_picos(), 40_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        let d = SimDuration::from_micros(3) + SimDuration::from_micros(2);
        assert_eq!(d.as_micros(), 5);
        assert!((SimDuration::from_secs_f64(0.001).as_secs_f64() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn freq_conversions_at_1ghz() {
        let f = Freq::gigahertz(1);
        assert_eq!(
            f.cycles_in(SimDuration::from_micros(50)),
            Cycle::new(50_000)
        );
        assert_eq!(f.cycles_in(SimDuration::from_nanos(40)), Cycle::new(40));
        assert_eq!(f.duration_of(Cycle::new(1_000)).as_nanos(), 1_000);
        assert_eq!(f.period().as_picos(), 1_000);
    }

    #[test]
    fn freq_conversions_at_500mhz() {
        let f = Freq::megahertz(500);
        // One cycle is 2 ns at 500 MHz.
        assert_eq!(f.cycles_in(SimDuration::from_micros(1)), Cycle::new(500));
        assert_eq!(f.duration_of(Cycle::new(500)).as_nanos(), 1_000);
    }

    #[test]
    fn freq_display() {
        assert_eq!(Freq::gigahertz(1).to_string(), "1 GHz");
        assert_eq!(Freq::megahertz(500).to_string(), "500 MHz");
        assert_eq!(Freq::hertz(123).to_string(), "123 Hz");
    }

    #[test]
    fn default_freq_is_paper_config() {
        assert_eq!(Freq::default(), Freq::megahertz(1000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycle::new(7).to_string(), "7 cyc");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000 us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000 ms");
        assert_eq!(SimDuration::from_picos(250).to_string(), "250 ps");
    }
}
