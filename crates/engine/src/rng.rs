//! Deterministic random-number generation.
//!
//! Every stochastic component of the simulator (workload address streams,
//! random replacement, jitter) draws from a [`DeterministicRng`] seeded from
//! the experiment configuration, so that runs are exactly reproducible and
//! independent streams can be derived per thread / per component without
//! correlation.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna) whose 256-bit state is expanded from the 64-bit seed
//! with SplitMix64, so the crate carries no external dependencies.

/// A seedable, deterministic random-number generator.
///
/// Independent sub-streams are derived with [`DeterministicRng::fork`], which
/// mixes a label into the seed so components do not share sequences.
///
/// # Example
///
/// ```
/// use refrint_engine::rng::DeterministicRng;
/// let mut a = DeterministicRng::from_seed(42);
/// let mut b = DeterministicRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step: advances `x` and returns the next output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = splitmix64(&mut x);
        }
        // xoshiro256++ must not start from the all-zero state.
        if state == [0; 4] {
            state = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        DeterministicRng { state, seed }
    }

    /// The seed this generator was created with.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a labelled sub-component.
    ///
    /// The same `(seed, label)` pair always produces the same stream, and
    /// different labels produce de-correlated streams.
    #[must_use]
    pub fn fork(&self, label: u64) -> DeterministicRng {
        // SplitMix64-style mixing of seed and label.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(label.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DeterministicRng::from_seed(z)
    }

    /// The next `u64` from the stream (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's multiply-shift reduction: deterministic, unbiased enough
        // for simulation workloads, no division on the hot path.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit() < p
    }

    /// A geometrically distributed value with success probability `p`,
    /// truncated at `max`. Used for compute-gap and burst-length draws.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64, max: u64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0,1]");
        let mut n = 0;
        while n < max && !self.chance(p) {
            n += 1;
        }
        n
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to the weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::from_seed(7);
        let mut b = DeterministicRng::from_seed(7);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::from_seed(1);
        let mut b = DeterministicRng::from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = DeterministicRng::from_seed(0);
        let values: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let root = DeterministicRng::from_seed(99);
        let mut f1a = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1a.next_u64(), f1b.next_u64());
        assert_ne!(root.fork(1).next_u64(), f2.next_u64());
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = DeterministicRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(100, 200);
            assert!((100..200).contains(&v));
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DeterministicRng::from_seed(12);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DeterministicRng::from_seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn geometric_truncates_at_max() {
        let mut r = DeterministicRng::from_seed(5);
        for _ in 0..200 {
            assert!(r.geometric(0.01, 16) <= 16);
        }
        // p = 1 means always zero.
        assert_eq!(r.geometric(1.0, 100), 0);
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut r = DeterministicRng::from_seed(6);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[r.weighted_index(&[0.1, 0.1, 0.8])] += 1;
        }
        assert!(counts[2] > counts[0] + counts[1]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_empty_panics() {
        let mut r = DeterministicRng::from_seed(8);
        let _ = r.weighted_index(&[]);
    }
}
