//! Deterministic random-number generation.
//!
//! Every stochastic component of the simulator (workload address streams,
//! random replacement, jitter) draws from a [`DeterministicRng`] seeded from
//! the experiment configuration, so that runs are exactly reproducible and
//! independent streams can be derived per thread / per component without
//! correlation.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable, deterministic random-number generator.
///
/// Wraps [`SmallRng`] and adds convenience helpers used throughout the
/// workspace. Independent sub-streams are derived with [`DeterministicRng::fork`],
/// which mixes a label into the seed so components do not share sequences.
///
/// # Example
///
/// ```
/// use refrint_engine::rng::DeterministicRng;
/// let mut a = DeterministicRng::from_seed(42);
/// let mut b = DeterministicRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    inner: SmallRng,
    seed: u64,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        DeterministicRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a labelled sub-component.
    ///
    /// The same `(seed, label)` pair always produces the same stream, and
    /// different labels produce de-correlated streams.
    #[must_use]
    pub fn fork(&self, label: u64) -> DeterministicRng {
        // SplitMix64-style mixing of seed and label.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(label.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DeterministicRng::from_seed(z)
    }

    /// The next `u64` from the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.inner.gen_range(0..bound)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit() < p
    }

    /// A geometrically distributed value with success probability `p`,
    /// truncated at `max`. Used for compute-gap and burst-length draws.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64, max: u64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0,1]");
        let mut n = 0;
        while n < max && !self.chance(p) {
            n += 1;
        }
        n
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to the weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

impl RngCore for DeterministicRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::from_seed(7);
        let mut b = DeterministicRng::from_seed(7);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::from_seed(1);
        let mut b = DeterministicRng::from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let root = DeterministicRng::from_seed(99);
        let mut f1a = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1a.next_u64(), f1b.next_u64());
        assert_ne!(root.fork(1).next_u64(), f2.next_u64());
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = DeterministicRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(100, 200);
            assert!((100..200).contains(&v));
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DeterministicRng::from_seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn geometric_truncates_at_max() {
        let mut r = DeterministicRng::from_seed(5);
        for _ in 0..200 {
            assert!(r.geometric(0.01, 16) <= 16);
        }
        // p = 1 means always zero.
        assert_eq!(r.geometric(1.0, 100), 0);
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut r = DeterministicRng::from_seed(6);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[r.weighted_index(&[0.1, 0.1, 0.8])] += 1;
        }
        assert!(counts[2] > counts[0] + counts[1]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_empty_panics() {
        let mut r = DeterministicRng::from_seed(8);
        let _ = r.weighted_index(&[]);
    }
}
