//! A minimal HTTP/1.1 request reader and response writer over blocking
//! `std::net` streams.
//!
//! This is not a general web server: it reads exactly one request per
//! connection (`Connection: close` semantics), enforces hard header and
//! body size limits before buffering anything, and reports every protocol
//! problem as a typed [`HttpError`] that maps onto a 4xx status — the
//! connection is answered, never dropped or panicked on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line + headers, before any body is read.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// The request target path (query strings are not used by this API).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Every header as `(lowercased-name, trimmed-value)`, in arrival
    /// order (trace context propagation reads `traceparent` from here).
    pub headers: Vec<(String, String)>,
    /// Host nanoseconds spent reading and parsing the head.
    pub head_nanos: u64,
    /// Host nanoseconds spent reading the body.
    pub body_nanos: u64,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one 4xx status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line or a header was not valid HTTP.
    Malformed(String),
    /// The request line + headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared `Content-Length` exceeds the server's body limit.
    BodyTooLarge {
        /// The declared body length.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// The connection closed or timed out before a full request arrived.
    Incomplete(String),
}

impl HttpError {
    /// The HTTP status code this error is answered with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::Incomplete(_) => 408,
        }
    }

    /// A short machine-readable error kind for the JSON error body.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            HttpError::Malformed(_) => "malformed_request",
            HttpError::HeadTooLarge => "headers_too_large",
            HttpError::BodyTooLarge { .. } => "body_too_large",
            HttpError::Incomplete(_) => "incomplete_request",
        }
    }

    /// A human-readable description for the JSON error body.
    #[must_use]
    pub fn reason(&self) -> String {
        match self {
            HttpError::Malformed(reason) => reason.clone(),
            HttpError::HeadTooLarge => {
                format!("request line + headers exceed {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                format!("request body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Incomplete(reason) => reason.clone(),
        }
    }
}

/// Reads one request from `stream`, honouring the configured body limit.
///
/// # Errors
///
/// [`HttpError`] describing the protocol problem; the caller turns it into
/// an error response on the same connection.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader_ref = BufReader::new(stream);
    let mut head = 0usize;
    let head_started = std::time::Instant::now();

    let request_line = read_head_line(&mut reader_ref, &mut head)?;
    let request_line = request_line.trim_end().to_owned();
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_owned(), p.to_owned(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_head_line(&mut reader_ref, &mut head)?;
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header `{header}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            let parsed = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{value}`")))?;
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }
    let head_nanos = elapsed_nanos(head_started);

    let body_started = std::time::Instant::now();
    let mut body = Vec::new();
    if let Some(len) = content_length {
        if len > max_body {
            return Err(HttpError::BodyTooLarge {
                declared: len,
                limit: max_body,
            });
        }
        body.resize(len, 0);
        reader_ref
            .read_exact(&mut body)
            .map_err(|e| HttpError::Incomplete(format!("body truncated: {e}")))?;
    }
    let body_nanos = elapsed_nanos(body_started);

    Ok(Request {
        method,
        path,
        body,
        headers,
        head_nanos,
        body_nanos,
    })
}

/// Nanoseconds since `start`, saturating into `u64`.
pub(crate) fn elapsed_nanos(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Reads one head line (request line or header), enforcing
/// [`MAX_HEAD_BYTES`] **per byte** — a line that never ends cannot buffer
/// more than the cap, however long the client keeps sending.
fn read_head_line(reader: &mut impl BufRead, head: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return Err(HttpError::Incomplete("connection closed".into())),
            Ok(_) => {
                *head += 1;
                if *head > MAX_HEAD_BYTES {
                    return Err(HttpError::HeadTooLarge);
                }
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Incomplete(format!("read failed: {e}"))),
        }
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 in headers".into()))
}

/// The reason phrase for the status codes this API uses.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response about to be written: status, content type, extra headers
/// and body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers, e.g. the cache-status marker.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status and body.
    #[must_use]
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response (used by `/metrics`).
    #[must_use]
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Writes the response to `stream`. Write failures are ignored — the
    /// client already went away and the server has nothing left to do for
    /// this connection.
    pub fn write(&self, stream: &mut TcpStream) {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(&self.body);
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the stream open briefly so a short read is a timeout,
            // not an early close, when the request is truncated.
            s.shutdown(std::net::Shutdown::Write).ok();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .unwrap();
        let result = read_request(&mut stream, max_body);
        // Close our end before joining: the client blocks in read_to_end
        // until the server side goes away.
        drop(stream);
        client.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(
            b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn captures_headers_case_insensitively() {
        let req = roundtrip(
            b"POST /run HTTP/1.1\r\nHost: x\r\nTraceParent: 00-abc-def-01\r\nContent-Length: 2\r\n\r\nok",
            1024,
        )
        .unwrap();
        assert_eq!(req.header("traceparent"), Some("00-abc-def-01"));
        assert_eq!(req.header("TRACEPARENT"), Some("00-abc-def-01"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("x-missing"), None);
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_bodies_are_rejected_before_buffering() {
        let err = roundtrip(
            b"POST /run HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.reason().contains("999999"), "{}", err.reason());
    }

    #[test]
    fn malformed_request_lines_are_400() {
        let err = roundtrip(b"NONSENSE\r\n\r\n", 1024).unwrap_err();
        assert_eq!(err.status(), 400);
        let err = roundtrip(b"GET /x SPDY/3\r\n\r\n", 1024).unwrap_err();
        assert_eq!(err.status(), 400);
        let err = roundtrip(
            b"POST /run HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn truncated_bodies_are_incomplete() {
        let err =
            roundtrip(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 1024).unwrap_err();
        assert_eq!(err.status(), 408);
    }

    #[test]
    fn oversized_heads_are_431() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        let err = roundtrip(&raw, 1024).unwrap_err();
        assert_eq!(err, HttpError::HeadTooLarge);
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn endless_header_lines_are_cut_off_while_the_client_still_sends() {
        // A single newline-free line must hit the cap immediately — not
        // buffer until EOF — even though the client keeps the socket open.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&vec![b'a'; MAX_HEAD_BYTES + 64]).unwrap();
            // No shutdown: block reading until the server gives up on us.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let err = read_request(&mut stream, 1024).unwrap_err();
        assert_eq!(err, HttpError::HeadTooLarge);
        drop(stream);
        client.join().unwrap();
    }
}
