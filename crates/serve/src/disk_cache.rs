//! Persistent on-disk result cache for the server and the coordinator.
//!
//! Response bodies are content-addressed by the same canonical cache key
//! the in-memory [`ResultCache`](crate::jobs::ResultCache) uses (the
//! request's normalised parameter string), so a result computed before a
//! restart — or by a different coordinator pointed at the same
//! `--cache-dir` — is served without touching a backend.
//!
//! # Layout
//!
//! ```text
//! <dir>/index.json          {"version":1,"entries":[{"key":…,"hash":…,"len":…},…]}
//! <dir>/<16-hex-fnv1a>.body response bytes, exactly as sent to the client
//! ```
//!
//! `entries` is kept in least-recently-used order (front = coldest); a
//! `put` beyond capacity evicts from the front and deletes the body file.
//! Writes are atomic: body and index land in a `.tmp` sibling first and
//! are renamed into place, so a crash mid-write leaves the previous state
//! intact. File names hash the key with FNV-1a (64-bit); a collision
//! would make two keys share a file name, which the index's exact-key and
//! body-length checks turn into a miss rather than a wrong answer.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use refrint_engine::json::{escape, parse, Value};
use refrint_obs::log::Logger;
use refrint_obs::span::fnv1a;

/// One index entry: a cache key, the body file it maps to, and the
/// expected body length.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexEntry {
    key: String,
    hash: String,
    len: usize,
}

/// A persistent LRU cache of response bodies under one directory.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    capacity: usize,
    index: Mutex<Vec<IndexEntry>>,
}

impl DiskCache {
    /// Opens (or creates) the cache directory and loads its index. A
    /// missing, unparseable or partially-valid index degrades to the
    /// entries whose body files still exist — never to an error.
    ///
    /// # Errors
    ///
    /// Only if the directory cannot be created.
    pub fn open(dir: &Path, capacity: usize) -> io::Result<Self> {
        Self::open_observed(dir, capacity, &Logger::disabled(), None)
    }

    /// [`open`](DiskCache::open) with corruption observability: a corrupt
    /// `index.json` (unparseable, wrong version, or missing its `entries`
    /// array) still degrades to an empty index, but emits a structured
    /// warn line and bumps `resets` (the
    /// `refrint_disk_cache_resets_total` counter) instead of doing so
    /// silently. A merely *missing* index — a fresh cache directory — is
    /// normal and stays quiet.
    ///
    /// # Errors
    ///
    /// Only if the directory cannot be created.
    pub fn open_observed(
        dir: &Path,
        capacity: usize,
        logger: &Logger,
        resets: Option<&AtomicU64>,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let index_path = dir.join("index.json");
        let index = match load_index(&index_path) {
            IndexLoad::Missing => Vec::new(),
            IndexLoad::Corrupt => {
                logger.warn(
                    "disk_cache_index_corrupt",
                    &[
                        ("path", index_path.display().to_string()),
                        ("action", "reset_to_empty".to_owned()),
                    ],
                );
                if let Some(counter) = resets {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
                Vec::new()
            }
            IndexLoad::Loaded(entries) => entries,
        };
        let index = index
            .into_iter()
            .filter(|e| dir.join(format!("{}.body", e.hash)).is_file())
            .collect();
        Ok(Self {
            dir: dir.to_path_buf(),
            capacity: capacity.max(1),
            index: Mutex::new(index),
        })
    }

    /// The number of cached bodies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.lock().unwrap().len()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a key up, refreshing its LRU position on a hit. Returns
    /// `None` on a miss or when the body file disappeared or changed
    /// length behind the index's back.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let mut index = self.index.lock().unwrap();
        let pos = index.iter().position(|e| e.key == key)?;
        let entry = index.remove(pos);
        let body = std::fs::read(self.dir.join(format!("{}.body", entry.hash))).ok()?;
        if body.len() != entry.len {
            return None;
        }
        index.push(entry);
        Some(body)
    }

    /// Stores a body under a key, evicting least-recently-used entries
    /// beyond capacity, and persists the index. Write failures are
    /// returned but leave the previous on-disk state intact (tmp +
    /// rename).
    ///
    /// # Errors
    ///
    /// Any filesystem error while writing the body or the index.
    pub fn put(&self, key: &str, body: &[u8]) -> io::Result<()> {
        let hash = format!("{:016x}", fnv1a(0, key.as_bytes()));
        let path = self.dir.join(format!("{hash}.body"));
        write_atomic(&path, body)?;

        let mut index = self.index.lock().unwrap();
        index.retain(|e| e.key != key);
        index.push(IndexEntry {
            key: key.to_owned(),
            hash,
            len: body.len(),
        });
        while index.len() > self.capacity {
            let evicted = index.remove(0);
            std::fs::remove_file(self.dir.join(format!("{}.body", evicted.hash))).ok();
        }
        let doc = index_document(&index);
        drop(index);
        write_atomic(&self.dir.join("index.json"), doc.as_bytes())
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn index_document(index: &[IndexEntry]) -> String {
    let entries: Vec<String> = index
        .iter()
        .map(|e| {
            format!(
                "{{\"key\":\"{}\",\"hash\":\"{}\",\"len\":{}}}",
                escape(&e.key),
                e.hash,
                e.len
            )
        })
        .collect();
    format!("{{\"version\":1,\"entries\":[{}]}}", entries.join(","))
}

/// How the on-disk index read went: absent (a fresh directory), corrupt
/// (present but unusable — worth warning about), or loaded.
enum IndexLoad {
    Missing,
    Corrupt,
    Loaded(Vec<IndexEntry>),
}

fn load_index(path: &Path) -> IndexLoad {
    let Ok(text) = std::fs::read_to_string(path) else {
        return IndexLoad::Missing;
    };
    let Ok(doc) = parse(&text) else {
        return IndexLoad::Corrupt;
    };
    if doc.get("version").and_then(Value::as_u64) != Some(1) {
        return IndexLoad::Corrupt;
    }
    let Some(entries) = doc.get("entries").and_then(Value::as_arr) else {
        return IndexLoad::Corrupt;
    };
    IndexLoad::Loaded(
        entries
            .iter()
            .filter_map(|e| {
                Some(IndexEntry {
                    key: e.get("key")?.as_str()?.to_owned(),
                    hash: e.get("hash")?.as_str()?.to_owned(),
                    len: usize::try_from(e.get("len")?.as_u64()?).ok()?,
                })
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("refrint-disk-cache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn round_trips_and_survives_reopen() {
        let dir = temp_dir("reopen");
        let cache = DiskCache::open(&dir, 8).unwrap();
        assert!(cache.is_empty());
        assert!(cache.get("run|a").is_none());
        cache.put("run|a", b"{\"x\":1}\n").unwrap();
        cache.put("run|b", b"{\"x\":2}\n").unwrap();
        assert_eq!(cache.get("run|a").as_deref(), Some(b"{\"x\":1}\n".as_ref()));

        let reopened = DiskCache::open(&dir, 8).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(
            reopened.get("run|b").as_deref(),
            Some(b"{\"x\":2}\n".as_ref())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicts_least_recently_used_beyond_capacity() {
        let dir = temp_dir("evict");
        let cache = DiskCache::open(&dir, 2).unwrap();
        cache.put("a", b"1").unwrap();
        cache.put("b", b"2").unwrap();
        assert!(cache.get("a").is_some(), "touch a so b is coldest");
        cache.put("c", b"3").unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "b was evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        // The evicted body file is gone too.
        let bodies = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "body"))
            .count();
        assert_eq!(bodies, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_index_or_missing_bodies_degrade_to_empty() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("index.json"), b"not json").unwrap();
        let cache = DiskCache::open(&dir, 4).unwrap();
        assert!(cache.is_empty());

        cache.put("k", b"body").unwrap();
        // Delete the body behind the index's back: reopen drops the entry.
        for e in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
            if e.path().extension().is_some_and(|x| x == "body") {
                std::fs::remove_file(e.path()).unwrap();
            }
        }
        let reopened = DiskCache::open(&dir, 4).unwrap();
        assert!(reopened.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_index_warns_and_counts_a_reset() {
        use refrint_obs::log::{Level, LogFormat};
        use std::sync::Arc;

        #[derive(Clone, Default)]
        struct Capture(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Capture {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let dir = temp_dir("reset-observed");
        let resets = AtomicU64::new(0);
        let cap = Capture::default();
        let logger = Logger::to_writer(Level::Warn, LogFormat::Json, Box::new(cap.clone()));

        // A fresh directory (missing index) is normal: no warn, no count.
        let fresh = DiskCache::open_observed(&dir, 4, &logger, Some(&resets)).unwrap();
        assert!(fresh.is_empty());
        assert_eq!(resets.load(Ordering::Relaxed), 0);
        assert!(cap.0.lock().unwrap().is_empty(), "missing index is silent");

        // A corrupt index degrades to empty, loudly.
        std::fs::write(dir.join("index.json"), b"not json").unwrap();
        let corrupt = DiskCache::open_observed(&dir, 4, &logger, Some(&resets)).unwrap();
        assert!(corrupt.is_empty());
        assert_eq!(resets.load(Ordering::Relaxed), 1);
        let log = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert!(log.contains("disk_cache_index_corrupt"), "{log}");
        assert!(log.contains("reset_to_empty"), "{log}");

        // Wrong version and missing entries are corruption too.
        std::fs::write(dir.join("index.json"), b"{\"version\":2,\"entries\":[]}").unwrap();
        DiskCache::open_observed(&dir, 4, &logger, Some(&resets)).unwrap();
        assert_eq!(resets.load(Ordering::Relaxed), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_overwrites_in_place() {
        let dir = temp_dir("overwrite");
        let cache = DiskCache::open(&dir, 4).unwrap();
        cache.put("k", b"old").unwrap();
        cache.put("k", b"new").unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("k").as_deref(), Some(b"new".as_ref()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
