//! Service counters and the `/metrics` endpoint rendering.
//!
//! Counters are plain atomics updated by connection handlers and workers;
//! `GET /metrics` renders them in the Prometheus text exposition format so
//! standard scrapers (and `grep` in the CI smoke job) can read them. The
//! refs/sec gauge is derived from two monotonic counters — total simulated
//! references and total busy seconds — mirroring how the `sim_throughput`
//! bench reports throughput.
//!
//! Beyond the plain counters, the endpoint also exposes:
//!
//! * two load gauges — `refrint_queue_depth` (jobs enqueued but not yet
//!   claimed) and `refrint_workers_busy` (workers currently simulating);
//! * an HTTP request-latency histogram
//!   (`refrint_http_request_duration_seconds`), recorded per connection in
//!   microseconds and rendered in seconds with cumulative `le` buckets;
//! * `refrint_subsystem_cycles_total{subsystem="…"}`, the simulated-cycle
//!   attribution collected by the observability recorder that every `run`
//!   job executes with (see `docs/observability.md`; sweep jobs do not
//!   contribute).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use refrint_engine::stats::Histogram;
use refrint_obs::span::{Subsystem, REQUEST_STAGES};

/// The default request-latency bucket bounds, in microseconds. Scrapes of
/// a server started without `--latency-buckets` see exactly these.
pub const LATENCY_BOUNDS_MICROS: [u64; 10] = [
    100, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 30_000_000,
];

/// The server's monotonic counters.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// HTTP requests accepted (any method/path).
    pub http_requests: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub http_errors: AtomicU64,
    /// Jobs submitted to the queue (cache hits do not submit).
    pub jobs_submitted: AtomicU64,
    /// Jobs that finished successfully.
    pub jobs_completed: AtomicU64,
    /// Jobs that finished with an error.
    pub jobs_failed: AtomicU64,
    /// Requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Requests that missed the cache and simulated.
    pub cache_misses: AtomicU64,
    /// Lookups answered from the persistent disk cache.
    pub disk_cache_hits: AtomicU64,
    /// Lookups that missed the persistent disk cache.
    pub disk_cache_misses: AtomicU64,
    /// Times the disk cache discarded a corrupt `index.json` and started
    /// from an empty index.
    pub disk_cache_resets: AtomicU64,
    /// Total data references simulated by completed jobs.
    pub refs_simulated: AtomicU64,
    /// Total wall-clock microseconds workers spent simulating.
    pub sim_micros: AtomicU64,
    /// Jobs enqueued but not yet claimed by a worker (gauge).
    pub queue_depth: AtomicU64,
    /// Workers currently executing a job (gauge).
    pub workers_busy: AtomicU64,
    /// Simulated cycles attributed per subsystem by completed run jobs,
    /// indexed by [`Subsystem::index`].
    pub subsystem_cycles: [AtomicU64; Subsystem::COUNT],
    /// HTTP request latency, in microseconds.
    request_micros: Mutex<Histogram>,
    /// Per-lifecycle-stage latency, in microseconds, indexed like
    /// [`REQUEST_STAGES`].
    stage_micros: [Mutex<Histogram>; REQUEST_STAGES.len()],
}

impl Metrics {
    /// Fresh counters with the default latency buckets; uptime starts now.
    #[must_use]
    pub fn new() -> Self {
        Self::with_latency_bounds(&LATENCY_BOUNDS_MICROS)
    }

    /// Fresh counters with caller-chosen latency bucket bounds (ascending
    /// microseconds), shared by the request and per-stage histograms.
    #[must_use]
    pub fn with_latency_bounds(bounds_micros: &[u64]) -> Self {
        Metrics {
            started: Instant::now(),
            http_requests: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            disk_cache_hits: AtomicU64::new(0),
            disk_cache_misses: AtomicU64::new(0),
            disk_cache_resets: AtomicU64::new(0),
            refs_simulated: AtomicU64::new(0),
            sim_micros: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            workers_busy: AtomicU64::new(0),
            subsystem_cycles: std::array::from_fn(|_| AtomicU64::new(0)),
            request_micros: Mutex::new(Histogram::with_bounds(bounds_micros)),
            stage_micros: std::array::from_fn(|_| {
                Mutex::new(Histogram::with_bounds(bounds_micros))
            }),
        }
    }

    /// Seconds since the server started.
    #[must_use]
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records a finished job's contribution to the throughput counters
    /// and the per-subsystem cycle attribution.
    pub fn record_job(
        &self,
        ok: bool,
        refs: u64,
        sim_seconds: f64,
        subsystem_cycles: &[u64; Subsystem::COUNT],
    ) {
        if ok {
            self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        self.refs_simulated.fetch_add(refs, Ordering::Relaxed);
        self.sim_micros
            .fetch_add((sim_seconds * 1e6) as u64, Ordering::Relaxed);
        for (total, cycles) in self.subsystem_cycles.iter().zip(subsystem_cycles) {
            total.fetch_add(*cycles, Ordering::Relaxed);
        }
    }

    /// Records one HTTP request's wall-clock latency.
    pub fn record_request_micros(&self, micros: u64) {
        self.request_micros
            .lock()
            .expect("latency histogram lock")
            .record(micros);
    }

    /// Records one lifecycle stage's wall-clock latency. Unknown stage
    /// names are ignored (the label set is fixed at [`REQUEST_STAGES`]).
    pub fn record_stage_micros(&self, stage: &str, micros: u64) {
        if let Some(i) = REQUEST_STAGES.iter().position(|s| *s == stage) {
            self.stage_micros[i]
                .lock()
                .expect("stage histogram lock")
                .record(micros);
        }
    }

    /// Renders the Prometheus text exposition document.
    #[must_use]
    pub fn render(&self) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let refs = get(&self.refs_simulated);
        let sim_seconds = get(&self.sim_micros) as f64 / 1e6;
        let refs_per_sec = if sim_seconds > 0.0 {
            refs as f64 / sim_seconds
        } else {
            0.0
        };
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "refrint_http_requests_total",
            "HTTP requests accepted.",
            get(&self.http_requests),
        );
        counter(
            "refrint_http_errors_total",
            "Requests answered with a 4xx/5xx status.",
            get(&self.http_errors),
        );
        counter(
            "refrint_jobs_submitted_total",
            "Jobs submitted to the queue.",
            get(&self.jobs_submitted),
        );
        counter(
            "refrint_jobs_completed_total",
            "Jobs that finished successfully.",
            get(&self.jobs_completed),
        );
        counter(
            "refrint_jobs_failed_total",
            "Jobs that finished with an error.",
            get(&self.jobs_failed),
        );
        counter(
            "refrint_cache_hits_total",
            "Requests served from the result cache.",
            get(&self.cache_hits),
        );
        counter(
            "refrint_cache_misses_total",
            "Requests that missed the result cache.",
            get(&self.cache_misses),
        );
        counter(
            "refrint_disk_cache_hits_total",
            "Lookups served from the persistent disk cache.",
            get(&self.disk_cache_hits),
        );
        counter(
            "refrint_disk_cache_misses_total",
            "Lookups that missed the persistent disk cache.",
            get(&self.disk_cache_misses),
        );
        counter(
            "refrint_disk_cache_resets_total",
            "Times a corrupt disk-cache index was discarded and rebuilt empty.",
            get(&self.disk_cache_resets),
        );
        counter(
            "refrint_refs_simulated_total",
            "Data references simulated by completed jobs.",
            refs,
        );
        out.push_str(&format!(
            "# HELP refrint_sim_seconds_total Wall-clock seconds spent simulating.\n\
             # TYPE refrint_sim_seconds_total counter\n\
             refrint_sim_seconds_total {sim_seconds:.6}\n"
        ));
        out.push_str(&format!(
            "# HELP refrint_refs_per_sec Simulated references per busy second.\n\
             # TYPE refrint_refs_per_sec gauge\n\
             refrint_refs_per_sec {refs_per_sec:.1}\n"
        ));
        out.push_str(&format!(
            "# HELP refrint_queue_depth Jobs enqueued but not yet claimed by a worker.\n\
             # TYPE refrint_queue_depth gauge\n\
             refrint_queue_depth {}\n",
            get(&self.queue_depth)
        ));
        out.push_str(&format!(
            "# HELP refrint_workers_busy Workers currently executing a job.\n\
             # TYPE refrint_workers_busy gauge\n\
             refrint_workers_busy {}\n",
            get(&self.workers_busy)
        ));
        out.push_str(
            "# HELP refrint_subsystem_cycles_total Simulated cycles attributed per subsystem \
             by completed run jobs.\n\
             # TYPE refrint_subsystem_cycles_total counter\n",
        );
        for s in Subsystem::ALL {
            out.push_str(&format!(
                "refrint_subsystem_cycles_total{{subsystem=\"{}\"}} {}\n",
                s.name(),
                get(&self.subsystem_cycles[s.index()])
            ));
        }
        {
            let h = self.request_micros.lock().expect("latency histogram lock");
            out.push_str(
                "# HELP refrint_http_request_duration_seconds HTTP request latency.\n\
                 # TYPE refrint_http_request_duration_seconds histogram\n",
            );
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds().iter().zip(h.buckets()) {
                cumulative += count;
                out.push_str(&format!(
                    "refrint_http_request_duration_seconds_bucket{{le=\"{}\"}} {cumulative}\n",
                    *bound as f64 / 1e6
                ));
            }
            out.push_str(&format!(
                "refrint_http_request_duration_seconds_bucket{{le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!(
                "refrint_http_request_duration_seconds_sum {:.6}\n",
                h.sum() as f64 / 1e6
            ));
            out.push_str(&format!(
                "refrint_http_request_duration_seconds_count {}\n",
                h.count()
            ));
        }
        out.push_str(
            "# HELP refrint_request_stage_seconds Wall-clock latency per request lifecycle \
             stage.\n\
             # TYPE refrint_request_stage_seconds histogram\n",
        );
        for (i, stage) in REQUEST_STAGES.iter().enumerate() {
            let h = self.stage_micros[i].lock().expect("stage histogram lock");
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds().iter().zip(h.buckets()) {
                cumulative += count;
                out.push_str(&format!(
                    "refrint_request_stage_seconds_bucket{{stage=\"{stage}\",le=\"{}\"}} \
                     {cumulative}\n",
                    *bound as f64 / 1e6
                ));
            }
            out.push_str(&format!(
                "refrint_request_stage_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!(
                "refrint_request_stage_seconds_sum{{stage=\"{stage}\"}} {:.6}\n",
                h.sum() as f64 / 1e6
            ));
            out.push_str(&format!(
                "refrint_request_stage_seconds_count{{stage=\"{stage}\"}} {}\n",
                h.count()
            ));
        }
        out.push_str(&format!(
            "# HELP refrint_uptime_seconds Seconds since the server started.\n\
             # TYPE refrint_uptime_seconds gauge\n\
             refrint_uptime_seconds {:.3}\n",
            self.uptime_seconds()
        ));
        out
    }

    /// Names of the counters a [`TimeSeriesRing`] window retains,
    /// index-aligned with [`history_values`](Metrics::history_values).
    /// The request-latency histogram contributes its raw (non-cumulative)
    /// per-bucket counts — each bucket is individually monotonic, so
    /// window deltas merge histograms correctly.
    #[must_use]
    pub fn history_names(&self) -> Vec<String> {
        let mut names: Vec<String> = [
            "http_requests",
            "http_errors",
            "jobs_submitted",
            "jobs_completed",
            "jobs_failed",
            "cache_hits",
            "cache_misses",
            "disk_cache_hits",
            "disk_cache_misses",
            "disk_cache_resets",
            "refs_simulated",
            "sim_micros",
            "queue_depth",
            "workers_busy",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        for s in Subsystem::ALL {
            names.push(format!("subsystem_cycles_{}", s.name()));
        }
        let h = self.request_micros.lock().expect("latency histogram lock");
        for bound in h.bounds() {
            names.push(format!("request_micros_bucket_{bound}"));
        }
        names.push("request_micros_bucket_inf".to_owned());
        names.push("request_micros_count".to_owned());
        names.push("request_micros_sum".to_owned());
        names
    }

    /// Snapshots every history counter into `out` (cleared first), in
    /// [`history_names`](Metrics::history_names) order. `out` is reused
    /// across ticks so the background sampler allocates nothing at steady
    /// state.
    pub fn history_values(&self, out: &mut Vec<u64>) {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        out.clear();
        out.extend([
            get(&self.http_requests),
            get(&self.http_errors),
            get(&self.jobs_submitted),
            get(&self.jobs_completed),
            get(&self.jobs_failed),
            get(&self.cache_hits),
            get(&self.cache_misses),
            get(&self.disk_cache_hits),
            get(&self.disk_cache_misses),
            get(&self.disk_cache_resets),
            get(&self.refs_simulated),
            get(&self.sim_micros),
            get(&self.queue_depth),
            get(&self.workers_busy),
        ]);
        for s in Subsystem::ALL {
            out.push(get(&self.subsystem_cycles[s.index()]));
        }
        let h = self.request_micros.lock().expect("latency histogram lock");
        out.extend(h.buckets().iter().copied());
        out.push(h.count());
        out.push(h.sum());
    }
}

/// History names that are point-in-time gauges rather than monotonic
/// counters — `/metrics/history` reports their latest value, not a delta.
pub const HISTORY_GAUGES: [&str; 2] = ["queue_depth", "workers_busy"];

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_counter_in_prometheus_format() {
        let m = Metrics::new();
        m.http_requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.record_job(true, 1000, 0.5, &[10, 0, 20, 0, 30]);
        m.record_job(false, 0, 0.0, &[0; Subsystem::COUNT]);
        let doc = m.render();
        assert!(doc.contains("refrint_http_requests_total 3"));
        assert!(doc.contains("refrint_cache_hits_total 1"));
        assert!(doc.contains("refrint_jobs_completed_total 1"));
        assert!(doc.contains("refrint_jobs_failed_total 1"));
        assert!(doc.contains("refrint_refs_simulated_total 1000"));
        assert!(doc.contains("refrint_refs_per_sec 2000.0"));
        assert!(doc.contains("# TYPE refrint_uptime_seconds gauge"));
        // Every exposed line is either a comment or `name value`.
        for line in doc.lines() {
            assert!(
                line.starts_with('#') || line.splitn(2, ' ').count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn load_gauges_and_subsystem_cycles_render() {
        let m = Metrics::new();
        m.queue_depth.fetch_add(3, Ordering::Relaxed);
        m.workers_busy.fetch_add(2, Ordering::Relaxed);
        m.record_job(true, 100, 0.1, &[7, 0, 0, 0, 9]);
        let doc = m.render();
        assert!(doc.contains("refrint_queue_depth 3"));
        assert!(doc.contains("refrint_workers_busy 2"));
        assert!(doc.contains("refrint_subsystem_cycles_total{subsystem=\"cache\"} 7"));
        assert!(doc.contains("refrint_subsystem_cycles_total{subsystem=\"dram\"} 9"));
        assert!(doc.contains("refrint_subsystem_cycles_total{subsystem=\"coherence\"} 0"));
    }

    #[test]
    fn latency_histogram_buckets_are_cumulative_seconds() {
        let m = Metrics::new();
        m.record_request_micros(50); // below the first bound
        m.record_request_micros(2_000); // in the 5ms bucket
        m.record_request_micros(40_000_000); // beyond the last bound
        let doc = m.render();
        assert!(doc.contains("refrint_http_request_duration_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(doc.contains("refrint_http_request_duration_seconds_bucket{le=\"0.005\"} 2"));
        assert!(doc.contains("refrint_http_request_duration_seconds_bucket{le=\"30\"} 2"));
        assert!(doc.contains("refrint_http_request_duration_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(doc.contains("refrint_http_request_duration_seconds_count 3"));
        // The sum is in seconds: 50us + 2ms + 40s ≈ 40.00205s.
        assert!(doc.contains("refrint_http_request_duration_seconds_sum 40.002050"));
    }

    #[test]
    fn stage_histograms_render_per_stage_labels() {
        let m = Metrics::new();
        m.record_stage_micros("execute", 2_000);
        m.record_stage_micros("parse", 50);
        m.record_stage_micros("not_a_stage", 1); // must be ignored
        let doc = m.render();
        assert!(doc.contains("# TYPE refrint_request_stage_seconds histogram"));
        assert!(
            doc.contains("refrint_request_stage_seconds_bucket{stage=\"execute\",le=\"0.005\"} 1")
        );
        assert!(doc.contains("refrint_request_stage_seconds_count{stage=\"execute\"} 1"));
        assert!(doc.contains("refrint_request_stage_seconds_count{stage=\"parse\"} 1"));
        // Every declared stage renders, even with no samples.
        for stage in REQUEST_STAGES {
            assert!(
                doc.contains(&format!(
                    "refrint_request_stage_seconds_count{{stage=\"{stage}\"}} "
                )),
                "missing stage {stage}"
            );
        }
        assert!(!doc.contains("not_a_stage"));
    }

    #[test]
    fn history_snapshot_is_name_aligned_and_reusable() {
        let m = Metrics::new();
        m.http_requests.fetch_add(7, Ordering::Relaxed);
        m.disk_cache_resets.fetch_add(1, Ordering::Relaxed);
        m.record_request_micros(2_000);
        let names = m.history_names();
        let mut values = Vec::new();
        m.history_values(&mut values);
        assert_eq!(names.len(), values.len(), "names and values stay aligned");
        let col = |n: &str| names.iter().position(|x| x == n).unwrap();
        assert_eq!(values[col("http_requests")], 7);
        assert_eq!(values[col("disk_cache_resets")], 1);
        assert_eq!(values[col("request_micros_count")], 1);
        assert_eq!(values[col("request_micros_sum")], 2_000);
        assert_eq!(values[col("request_micros_bucket_5000")], 1);
        assert_eq!(values[col("request_micros_bucket_inf")], 0);
        // The scratch vector is reused without growing misaligned.
        m.http_requests.fetch_add(1, Ordering::Relaxed);
        m.history_values(&mut values);
        assert_eq!(values.len(), names.len());
        assert_eq!(values[col("http_requests")], 8);
        assert!(m.render().contains("refrint_disk_cache_resets_total 1"));
    }

    #[test]
    fn custom_latency_bounds_reshape_both_histogram_families() {
        let m = Metrics::with_latency_bounds(&[10, 100]);
        m.record_request_micros(50);
        m.record_stage_micros("write", 5);
        let doc = m.render();
        assert!(doc.contains("refrint_http_request_duration_seconds_bucket{le=\"0.00001\"} 0"));
        assert!(doc.contains("refrint_http_request_duration_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(
            doc.contains("refrint_request_stage_seconds_bucket{stage=\"write\",le=\"0.00001\"} 1")
        );
        // The default bounds are unchanged by the knob existing.
        let default_doc = Metrics::new().render();
        assert!(default_doc.contains("refrint_http_request_duration_seconds_bucket{le=\"30\"} 0"));
    }
}
