//! `serve-client` — a command-line client for `refrint-serve`, used by the
//! CI smoke job and for manual poking without `curl`.
//!
//! Commands (all need `--addr HOST:PORT`):
//!
//! * `health` — `GET /healthz`, exit 0 on 200.
//! * `metrics` — `GET /metrics`, print the exposition text.
//! * `run --app <name> [--refs N] [--cores N] [--seed N] [--policy L]`
//!   `[--retention US] [--sram] [--trace NAME] [--expect-cache hit|miss]`
//!   — `POST /run`, print the result body (byte-identical to
//!   `refrint-cli run --format json`).
//! * `sweep [--apps a,b] [--refs N] [--cores N]` — `POST /sweep`.
//! * `job --id ID [--result]` — `GET /jobs/<id>[/result]`.
//! * `trace <job-id>` — `GET /jobs/<id>/trace`, pretty-print the span
//!   tree with per-stage durations and the critical path marked.
//! * `loadtest [--clients N] [--requests N] [--app NAME] [--refs N]`
//!   `[--cores N] [--out FILE]` — hammer `POST /run` from N concurrent
//!   clients and print a latency-percentile summary as JSON
//!   (`BENCH_SERVE.json` is a committed baseline of this output).
//! * `shutdown` — `POST /shutdown`.
//!
//! Exit status is non-zero on any non-2xx response, and on an
//! `--expect-cache` mismatch (the smoke job uses this to prove the second
//! identical request was served from the cache).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use refrint_engine::json::{parse, Value};
use refrint_serve::client::{self, HttpResponse};

const USAGE: &str = "\
serve-client --addr HOST:PORT <command>

Commands:
  health                           GET /healthz
  metrics                          GET /metrics
  run --app <name> [--refs N] [--cores N] [--seed N] [--policy L]
      [--retention US] [--sram] [--trace NAME] [--mode sync|async]
      [--traceparent TP] [--expect-cache hit|miss]
                                   POST /run and print the body
  sweep [--apps a,b] [--refs N] [--cores N] [--expect-cache hit|miss]
                                   POST /sweep and print the body
  job --id ID [--result]           GET /jobs/<id>[/result]
  trace <job-id>                   GET /jobs/<id>/trace, pretty-printed
  loadtest [--clients N] [--requests N] [--app NAME] [--refs N] [--cores N]
           [--out FILE]            POST /run from N concurrent clients and
                                   print a latency summary as JSON
  shutdown                         POST /shutdown
";

/// Flags that take no value; every other `--flag` consumes the next
/// argument.
const BARE_FLAGS: &[&str] = &["--sram", "--result"];

fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The positional arguments in order: flags and their values are skipped,
/// so flag order relative to the command does not matter.
fn positionals(args: &[String]) -> Vec<String> {
    let mut found = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            i += if BARE_FLAGS.contains(&arg.as_str()) {
                1
            } else {
                2
            };
        } else {
            found.push(arg.clone());
            i += 1;
        }
    }
    found
}

/// The first positional argument (the command name).
fn command(args: &[String]) -> Option<String> {
    positionals(args).into_iter().next()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let addr: SocketAddr = opt_value(args, "--addr")
        .ok_or(format!("--addr HOST:PORT is required\n{USAGE}"))?
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let command = command(args).ok_or(format!("a command is required\n{USAGE}"))?;

    if command == "trace" {
        return trace_command(args, addr);
    }
    if command == "loadtest" {
        return loadtest_command(args, addr);
    }
    let response = match command.as_str() {
        "health" => client::get(addr, "/healthz"),
        "metrics" => client::get(addr, "/metrics"),
        "shutdown" => client::post(addr, "/shutdown", b""),
        "run" => post_traced(args, addr, "/run", &run_body(args)?),
        "sweep" => post_traced(args, addr, "/sweep", &sweep_body(args)?),
        "job" => {
            let id = opt_value(args, "--id").ok_or("job requires --id ID")?;
            let path = if has_flag(args, "--result") {
                format!("/jobs/{id}/result")
            } else {
                format!("/jobs/{id}")
            };
            client::get(addr, &path)
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }
    .map_err(|e| format!("request failed: {e}"))?;

    finish(args, &command, &response)
}

fn finish(args: &[String], command: &str, response: &HttpResponse) -> Result<(), String> {
    print!("{}", response.body_str());
    if let Some(expected) = opt_value(args, "--expect-cache") {
        let got = response.header("X-Refrint-Cache").unwrap_or("(absent)");
        if got != expected {
            return Err(format!(
                "expected X-Refrint-Cache: {expected}, server sent {got}"
            ));
        }
    }
    if response.status / 100 == 2 {
        Ok(())
    } else {
        Err(format!("{command} failed with HTTP {}", response.status))
    }
}

/// Builds the `POST /run` JSON body from the flags. Values are numbers or
/// policy/app labels — none need escaping beyond what the grammar forbids,
/// but labels are escaped anyway for robustness.
fn run_body(args: &[String]) -> Result<String, String> {
    let mut fields = Vec::new();
    let escape = refrint_serve::json_escape;
    if let Some(app) = opt_value(args, "--app") {
        fields.push(format!("\"app\":\"{}\"", escape(&app)));
    }
    if let Some(trace) = opt_value(args, "--trace") {
        fields.push(format!("\"trace\":\"{}\"", escape(&trace)));
    }
    if has_flag(args, "--sram") {
        fields.push("\"sram\":true".to_owned());
    }
    if let Some(policy) = opt_value(args, "--policy") {
        fields.push(format!("\"policy\":\"{}\"", escape(&policy)));
    }
    for (flag, key) in [
        ("--retention", "retention_us"),
        ("--refs", "refs"),
        ("--seed", "seed"),
        ("--cores", "cores"),
    ] {
        if let Some(v) = opt_value(args, flag) {
            let n: u64 = v.parse().map_err(|_| format!("bad {flag} `{v}`"))?;
            fields.push(format!("\"{key}\":{n}"));
        }
    }
    if let Some(mode) = opt_value(args, "--mode") {
        fields.push(format!("\"mode\":\"{}\"", escape(&mode)));
    }
    Ok(format!("{{{}}}", fields.join(",")))
}

/// `POST`s a body, forwarding a `--traceparent` header when given.
fn post_traced(
    args: &[String],
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> std::io::Result<HttpResponse> {
    match opt_value(args, "--traceparent") {
        Some(tp) => client::request_with_headers(
            addr,
            "POST",
            path,
            Some(body.as_bytes()),
            &[("traceparent", tp.as_str())],
        ),
        None => client::post(addr, path, body.as_bytes()),
    }
}

/// `trace <job-id>`: fetches `/jobs/<id>/trace` (retrying briefly while
/// the server answers 202) and pretty-prints the span tree.
fn trace_command(args: &[String], addr: SocketAddr) -> Result<(), String> {
    let id = opt_value(args, "--id")
        .or_else(|| positionals(args).into_iter().nth(1))
        .ok_or("trace requires a job id: trace <job-id>")?;
    let path = format!("/jobs/{id}/trace");
    let mut response = client::get(addr, &path).map_err(|e| format!("request failed: {e}"))?;
    for _ in 0..40 {
        if response.status != 202 {
            break;
        }
        std::thread::sleep(Duration::from_millis(250));
        response = client::get(addr, &path).map_err(|e| format!("request failed: {e}"))?;
    }
    if response.status != 200 {
        print!("{}", response.body_str());
        return Err(format!("trace failed with HTTP {}", response.status));
    }
    print_trace(&response.body_str())
}

/// Returns the string or int value of the attribute named `key`.
fn attr<'a>(attrs: &'a [Value], key: &str) -> Option<&'a str> {
    attrs.iter().find_map(|a| {
        if a.get("key").and_then(Value::as_str) == Some(key) {
            let value = a.get("value")?;
            value
                .get("stringValue")
                .or_else(|| value.get("intValue"))
                .and_then(Value::as_str)
        } else {
            None
        }
    })
}

fn span_field<'a>(span: &'a Value, key: &str) -> &'a str {
    span.get(key).and_then(Value::as_str).unwrap_or("")
}

fn span_nanos(span: &Value, key: &str) -> u64 {
    span_field(span, key).parse().unwrap_or(0)
}

/// Pretty-prints one OTLP request-trace document as an indented span tree
/// with durations, marking the critical stage and subsystem.
fn print_trace(text: &str) -> Result<(), String> {
    let doc = parse(text.trim_end()).map_err(|e| format!("bad trace document: {e}"))?;
    let resource = doc
        .get("resourceSpans")
        .and_then(Value::as_arr)
        .and_then(|rs| rs.first())
        .ok_or("trace document has no resourceSpans")?;
    let empty = Vec::new();
    let resource_attrs = resource
        .get("resource")
        .and_then(|r| r.get("attributes"))
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    let spans = resource
        .get("scopeSpans")
        .and_then(Value::as_arr)
        .and_then(|ss| ss.first())
        .and_then(|s| s.get("spans"))
        .and_then(Value::as_arr)
        .ok_or("trace document has no spans")?;

    let critical_stage = attr(resource_attrs, "refrint.request_critical_stage").unwrap_or("-");
    let critical_subsystem = attr(resource_attrs, "refrint.run_critical_subsystem");
    if let Some(first) = spans.first() {
        println!("trace {}", span_field(first, "traceId"));
    }
    for (key, label) in [
        ("refrint.job", "job"),
        ("refrint.job_kind", "kind"),
        ("refrint.job_cached", "cached"),
        ("refrint.request_total_nanos", "total_nanos"),
    ] {
        if let Some(v) = attr(resource_attrs, key) {
            println!("{label}: {v}");
        }
    }

    // Index spans by id and group children under their parent.
    let known: Vec<&str> = spans.iter().map(|s| span_field(s, "spanId")).collect();
    let roots: Vec<&Value> = spans
        .iter()
        .filter(|s| !known.contains(&span_field(s, "parentSpanId")))
        .collect();
    for root in roots {
        print_span(root, spans, 0, critical_stage, critical_subsystem);
    }
    if let Some(subsystem) = critical_subsystem {
        println!("run critical subsystem: {subsystem}");
    }
    println!("request critical stage: {critical_stage}");
    Ok(())
}

fn print_span(
    span: &Value,
    all: &[Value],
    depth: usize,
    critical_stage: &str,
    critical_subsystem: Option<&str>,
) {
    let name = span_field(span, "name");
    let dur =
        span_nanos(span, "endTimeUnixNano").saturating_sub(span_nanos(span, "startTimeUnixNano"));
    let empty = Vec::new();
    let attrs = span
        .get("attributes")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    // Simulator spans carry cycle timestamps, not host nanoseconds.
    let duration = if attr(attrs, "refrint.sim_cycles").is_some() {
        format!("{dur} cycles")
    } else {
        format!("{:.3} ms", dur as f64 / 1e6)
    };
    let critical = name.strip_prefix("stage/") == Some(critical_stage)
        || attr(attrs, "refrint.subsystem").is_some_and(|s| Some(s) == critical_subsystem);
    let marker = if critical { "  <== critical" } else { "" };
    println!("{}{name}  [{duration}]{marker}", "  ".repeat(depth));
    let id = span_field(span, "spanId");
    for child in all.iter().filter(|s| span_field(s, "parentSpanId") == id) {
        print_span(child, all, depth + 1, critical_stage, critical_subsystem);
    }
}

/// `loadtest`: N concurrent clients each issue M sequential `POST /run`
/// requests and the latency distribution is printed as JSON. One warmup
/// request populates the result cache first, so the numbers measure the
/// server's HTTP and cache path under concurrency — the serving overhead —
/// not N copies of the same simulation.
fn loadtest_command(args: &[String], addr: SocketAddr) -> Result<(), String> {
    let positive = |flag: &str, default: usize| -> Result<usize, String> {
        match opt_value(args, flag) {
            None => Ok(default),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("bad {flag} `{v}` (expected a positive integer)")),
            },
        }
    };
    let clients = positive("--clients", 32)?;
    let requests = positive("--requests", 10)?;
    let mut body = run_body(args)?;
    if body == "{}" {
        body = "{\"app\":\"lu\",\"refs\":400,\"cores\":2}".to_owned();
    }

    let warmup = client::post(addr, "/run", body.as_bytes())
        .map_err(|e| format!("warmup request failed: {e}"))?;
    if warmup.status != 200 {
        return Err(format!(
            "warmup request failed with HTTP {}: {}",
            warmup.status,
            warmup.body_str().trim()
        ));
    }

    let started = std::time::Instant::now();
    let mut latencies_micros: Vec<u64> = Vec::with_capacity(clients * requests);
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let body = body.as_str();
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests);
                    let mut errors = 0u64;
                    for _ in 0..requests {
                        let sent = std::time::Instant::now();
                        match client::post(addr, "/run", body.as_bytes()) {
                            Ok(r) if r.status == 200 => {
                                let micros =
                                    u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                                latencies.push(micros);
                            }
                            _ => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        for handle in handles {
            let (latencies, thread_errors) = handle.join().expect("loadtest thread");
            latencies_micros.extend(latencies);
            errors += thread_errors;
        }
    });
    let duration_seconds = started.elapsed().as_secs_f64();

    latencies_micros.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies_micros.is_empty() {
            return 0;
        }
        let rank =
            ((latencies_micros.len() as f64 * p).ceil() as usize).clamp(1, latencies_micros.len());
        latencies_micros[rank - 1]
    };
    let mean = if latencies_micros.is_empty() {
        0
    } else {
        latencies_micros.iter().sum::<u64>() / latencies_micros.len() as u64
    };
    let total = clients * requests;
    let rps = if duration_seconds > 0.0 {
        total as f64 / duration_seconds
    } else {
        0.0
    };
    let doc = format!(
        concat!(
            "{{\"clients\":{},\"requests_per_client\":{},\"total_requests\":{},",
            "\"errors\":{},\"duration_seconds\":{:.3},\"requests_per_second\":{:.1},",
            "\"latency_micros\":{{\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}}}\n"
        ),
        clients,
        requests,
        total,
        errors,
        duration_seconds,
        rps,
        mean,
        percentile(0.50),
        percentile(0.90),
        percentile(0.99),
        latencies_micros.last().copied().unwrap_or(0),
    );
    print!("{doc}");
    if let Some(out) = opt_value(args, "--out") {
        std::fs::write(&out, doc.as_bytes()).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    if errors > 0 {
        return Err(format!("{errors} of {total} requests failed"));
    }
    Ok(())
}

fn sweep_body(args: &[String]) -> Result<String, String> {
    let mut fields = Vec::new();
    let escape = refrint_serve::json_escape;
    if let Some(apps) = opt_value(args, "--apps") {
        let list: Vec<String> = apps
            .split(',')
            .map(|a| format!("\"{}\"", escape(a.trim())))
            .collect();
        fields.push(format!("\"apps\":[{}]", list.join(",")));
    }
    for (flag, key) in [("--refs", "refs"), ("--cores", "cores")] {
        if let Some(v) = opt_value(args, flag) {
            let n: u64 = v.parse().map_err(|_| format!("bad {flag} `{v}`"))?;
            fields.push(format!("\"{key}\":{n}"));
        }
    }
    Ok(format!("{{{}}}", fields.join(",")))
}
