//! `serve-client` — a command-line client for `refrint-serve`, used by the
//! CI smoke job and for manual poking without `curl`.
//!
//! Commands (all need `--addr HOST:PORT`):
//!
//! * `health` — `GET /healthz`, exit 0 on 200.
//! * `metrics` — `GET /metrics`, print the exposition text.
//! * `run --app <name> [--refs N] [--cores N] [--seed N] [--policy L]`
//!   `[--retention US] [--sram] [--trace NAME] [--expect-cache hit|miss]`
//!   — `POST /run`, print the result body (byte-identical to
//!   `refrint-cli run --format json`).
//! * `sweep [--apps a,b] [--refs N] [--cores N]` — `POST /sweep`.
//! * `job --id ID [--result]` — `GET /jobs/<id>[/result]`.
//! * `shutdown` — `POST /shutdown`.
//!
//! Exit status is non-zero on any non-2xx response, and on an
//! `--expect-cache` mismatch (the smoke job uses this to prove the second
//! identical request was served from the cache).

use std::net::SocketAddr;
use std::process::ExitCode;

use refrint_serve::client::{self, HttpResponse};

const USAGE: &str = "\
serve-client --addr HOST:PORT <command>

Commands:
  health                           GET /healthz
  metrics                          GET /metrics
  run --app <name> [--refs N] [--cores N] [--seed N] [--policy L]
      [--retention US] [--sram] [--trace NAME] [--mode sync|async]
      [--expect-cache hit|miss]    POST /run and print the body
  sweep [--apps a,b] [--refs N] [--cores N] [--expect-cache hit|miss]
                                   POST /sweep and print the body
  job --id ID [--result]           GET /jobs/<id>[/result]
  shutdown                         POST /shutdown
";

/// Flags that take no value; every other `--flag` consumes the next
/// argument.
const BARE_FLAGS: &[&str] = &["--sram", "--result"];

fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The first positional argument: flags and their values are skipped, so
/// flag order relative to the command does not matter.
fn command(args: &[String]) -> Option<String> {
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            i += if BARE_FLAGS.contains(&arg.as_str()) {
                1
            } else {
                2
            };
        } else {
            return Some(arg.clone());
        }
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let addr: SocketAddr = opt_value(args, "--addr")
        .ok_or(format!("--addr HOST:PORT is required\n{USAGE}"))?
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let command = command(args).ok_or(format!("a command is required\n{USAGE}"))?;

    let response = match command.as_str() {
        "health" => client::get(addr, "/healthz"),
        "metrics" => client::get(addr, "/metrics"),
        "shutdown" => client::post(addr, "/shutdown", b""),
        "run" => client::post(addr, "/run", run_body(args)?.as_bytes()),
        "sweep" => client::post(addr, "/sweep", sweep_body(args)?.as_bytes()),
        "job" => {
            let id = opt_value(args, "--id").ok_or("job requires --id ID")?;
            let path = if has_flag(args, "--result") {
                format!("/jobs/{id}/result")
            } else {
                format!("/jobs/{id}")
            };
            client::get(addr, &path)
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }
    .map_err(|e| format!("request failed: {e}"))?;

    finish(args, &command, &response)
}

fn finish(args: &[String], command: &str, response: &HttpResponse) -> Result<(), String> {
    print!("{}", response.body_str());
    if let Some(expected) = opt_value(args, "--expect-cache") {
        let got = response.header("X-Refrint-Cache").unwrap_or("(absent)");
        if got != expected {
            return Err(format!(
                "expected X-Refrint-Cache: {expected}, server sent {got}"
            ));
        }
    }
    if response.status / 100 == 2 {
        Ok(())
    } else {
        Err(format!("{command} failed with HTTP {}", response.status))
    }
}

/// Builds the `POST /run` JSON body from the flags. Values are numbers or
/// policy/app labels — none need escaping beyond what the grammar forbids,
/// but labels are escaped anyway for robustness.
fn run_body(args: &[String]) -> Result<String, String> {
    let mut fields = Vec::new();
    let escape = refrint_serve::json_escape;
    if let Some(app) = opt_value(args, "--app") {
        fields.push(format!("\"app\":\"{}\"", escape(&app)));
    }
    if let Some(trace) = opt_value(args, "--trace") {
        fields.push(format!("\"trace\":\"{}\"", escape(&trace)));
    }
    if has_flag(args, "--sram") {
        fields.push("\"sram\":true".to_owned());
    }
    if let Some(policy) = opt_value(args, "--policy") {
        fields.push(format!("\"policy\":\"{}\"", escape(&policy)));
    }
    for (flag, key) in [
        ("--retention", "retention_us"),
        ("--refs", "refs"),
        ("--seed", "seed"),
        ("--cores", "cores"),
    ] {
        if let Some(v) = opt_value(args, flag) {
            let n: u64 = v.parse().map_err(|_| format!("bad {flag} `{v}`"))?;
            fields.push(format!("\"{key}\":{n}"));
        }
    }
    if let Some(mode) = opt_value(args, "--mode") {
        fields.push(format!("\"mode\":\"{}\"", escape(&mode)));
    }
    Ok(format!("{{{}}}", fields.join(",")))
}

fn sweep_body(args: &[String]) -> Result<String, String> {
    let mut fields = Vec::new();
    let escape = refrint_serve::json_escape;
    if let Some(apps) = opt_value(args, "--apps") {
        let list: Vec<String> = apps
            .split(',')
            .map(|a| format!("\"{}\"", escape(a.trim())))
            .collect();
        fields.push(format!("\"apps\":[{}]", list.join(",")));
    }
    for (flag, key) in [("--refs", "refs"), ("--cores", "cores")] {
        if let Some(v) = opt_value(args, flag) {
            let n: u64 = v.parse().map_err(|_| format!("bad {flag} `{v}`"))?;
            fields.push(format!("\"{key}\":{n}"));
        }
    }
    Ok(format!("{{{}}}", fields.join(",")))
}
