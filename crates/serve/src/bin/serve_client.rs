//! `serve-client` — a command-line client for `refrint-serve`, used by the
//! CI smoke job and for manual poking without `curl`.
//!
//! Commands (all need `--addr HOST:PORT`):
//!
//! * `health` — `GET /healthz`, exit 0 on 200.
//! * `metrics` — `GET /metrics`, print the exposition text.
//! * `run --app <name> [--refs N] [--cores N] [--seed N] [--policy L]`
//!   `[--retention US] [--sram] [--trace NAME] [--expect-cache hit|miss]`
//!   — `POST /run`, print the result body (byte-identical to
//!   `refrint-cli run --format json`).
//! * `sweep [--apps a,b] [--refs N] [--cores N]` — `POST /sweep`.
//! * `job --id ID [--result]` — `GET /jobs/<id>[/result]`.
//! * `trace <job-id>` — `GET /jobs/<id>/trace`, pretty-print the span
//!   tree with per-stage durations and the critical path marked. Fleet
//!   traces from a coordinator are stitched across every resource group,
//!   so backend subtrees appear under their dispatch anchors.
//! * `watch <job-id> [--raw]` — follow `GET /jobs/<id>/progress`, a
//!   chunked ndjson stream, printing one live status line per snapshot
//!   (or the raw ndjson with `--raw`).
//! * `obs-verify [--refs N] [--cores N]` — replay a known workload (two
//!   distinct runs plus one repeat) and cross-check the `/metrics` deltas
//!   against ground truth computed from the responses; exits non-zero on
//!   any counter drift.
//! * `loadtest [--clients N] [--requests N] [--app NAME] [--refs N]`
//!   `[--cores N] [--out FILE]` — hammer `POST /run` from N concurrent
//!   clients and print a latency-percentile summary as JSON
//!   (`BENCH_SERVE.json` is a committed baseline of this output).
//! * `shutdown` — `POST /shutdown`.
//!
//! Exit status is non-zero on any non-2xx response, and on an
//! `--expect-cache` mismatch (the smoke job uses this to prove the second
//! identical request was served from the cache).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use refrint_engine::json::{parse, Value};
use refrint_serve::client::{self, HttpResponse};

const USAGE: &str = "\
serve-client --addr HOST:PORT <command>

Commands:
  health                           GET /healthz
  metrics                          GET /metrics
  run --app <name> [--refs N] [--cores N] [--seed N] [--policy L]
      [--retention US] [--sram] [--trace NAME] [--mode sync|async]
      [--traceparent TP] [--expect-cache hit|miss]
                                   POST /run and print the body
  sweep [--apps a,b] [--refs N] [--cores N] [--mode sync|async]
        [--expect-cache hit|miss]  POST /sweep and print the body
  job --id ID [--result]           GET /jobs/<id>[/result]
  trace <job-id>                   GET /jobs/<id>/trace, pretty-printed
  watch <job-id> [--raw]           GET /jobs/<id>/progress and follow the
                                   live progress stream (--raw: ndjson)
  obs-verify [--refs N] [--cores N]
                                   replay a known workload and cross-check
                                   /metrics deltas against the responses
  loadtest [--clients N] [--requests N] [--app NAME] [--refs N] [--cores N]
           [--out FILE]            POST /run from N concurrent clients and
                                   print a latency summary as JSON
  shutdown                         POST /shutdown
";

/// Flags that take no value; every other `--flag` consumes the next
/// argument.
const BARE_FLAGS: &[&str] = &["--sram", "--result", "--raw"];

fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The positional arguments in order: flags and their values are skipped,
/// so flag order relative to the command does not matter.
fn positionals(args: &[String]) -> Vec<String> {
    let mut found = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            i += if BARE_FLAGS.contains(&arg.as_str()) {
                1
            } else {
                2
            };
        } else {
            found.push(arg.clone());
            i += 1;
        }
    }
    found
}

/// The first positional argument (the command name).
fn command(args: &[String]) -> Option<String> {
    positionals(args).into_iter().next()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let addr: SocketAddr = opt_value(args, "--addr")
        .ok_or(format!("--addr HOST:PORT is required\n{USAGE}"))?
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let command = command(args).ok_or(format!("a command is required\n{USAGE}"))?;

    if command == "trace" {
        return trace_command(args, addr);
    }
    if command == "watch" {
        return watch_command(args, addr);
    }
    if command == "obs-verify" {
        return obs_verify_command(args, addr);
    }
    if command == "loadtest" {
        return loadtest_command(args, addr);
    }
    let response = match command.as_str() {
        "health" => client::get(addr, "/healthz"),
        "metrics" => client::get(addr, "/metrics"),
        "shutdown" => client::post(addr, "/shutdown", b""),
        "run" => post_traced(args, addr, "/run", &run_body(args)?),
        "sweep" => post_traced(args, addr, "/sweep", &sweep_body(args)?),
        "job" => {
            let id = opt_value(args, "--id").ok_or("job requires --id ID")?;
            let path = if has_flag(args, "--result") {
                format!("/jobs/{id}/result")
            } else {
                format!("/jobs/{id}")
            };
            client::get(addr, &path)
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }
    .map_err(|e| format!("request failed: {e}"))?;

    finish(args, &command, &response)
}

fn finish(args: &[String], command: &str, response: &HttpResponse) -> Result<(), String> {
    print!("{}", response.body_str());
    if let Some(expected) = opt_value(args, "--expect-cache") {
        let got = response.header("X-Refrint-Cache").unwrap_or("(absent)");
        if got != expected {
            return Err(format!(
                "expected X-Refrint-Cache: {expected}, server sent {got}"
            ));
        }
    }
    if response.status / 100 == 2 {
        Ok(())
    } else {
        Err(format!("{command} failed with HTTP {}", response.status))
    }
}

/// Builds the `POST /run` JSON body from the flags. Values are numbers or
/// policy/app labels — none need escaping beyond what the grammar forbids,
/// but labels are escaped anyway for robustness.
fn run_body(args: &[String]) -> Result<String, String> {
    let mut fields = Vec::new();
    let escape = refrint_serve::json_escape;
    if let Some(app) = opt_value(args, "--app") {
        fields.push(format!("\"app\":\"{}\"", escape(&app)));
    }
    if let Some(trace) = opt_value(args, "--trace") {
        fields.push(format!("\"trace\":\"{}\"", escape(&trace)));
    }
    if has_flag(args, "--sram") {
        fields.push("\"sram\":true".to_owned());
    }
    if let Some(policy) = opt_value(args, "--policy") {
        fields.push(format!("\"policy\":\"{}\"", escape(&policy)));
    }
    for (flag, key) in [
        ("--retention", "retention_us"),
        ("--refs", "refs"),
        ("--seed", "seed"),
        ("--cores", "cores"),
    ] {
        if let Some(v) = opt_value(args, flag) {
            let n: u64 = v.parse().map_err(|_| format!("bad {flag} `{v}`"))?;
            fields.push(format!("\"{key}\":{n}"));
        }
    }
    if let Some(mode) = opt_value(args, "--mode") {
        fields.push(format!("\"mode\":\"{}\"", escape(&mode)));
    }
    Ok(format!("{{{}}}", fields.join(",")))
}

/// `POST`s a body, forwarding a `--traceparent` header when given.
fn post_traced(
    args: &[String],
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> std::io::Result<HttpResponse> {
    match opt_value(args, "--traceparent") {
        Some(tp) => client::request_with_headers(
            addr,
            "POST",
            path,
            Some(body.as_bytes()),
            &[("traceparent", tp.as_str())],
        ),
        None => client::post(addr, path, body.as_bytes()),
    }
}

/// `trace <job-id>`: fetches `/jobs/<id>/trace` (retrying briefly while
/// the server answers 202) and pretty-prints the span tree.
fn trace_command(args: &[String], addr: SocketAddr) -> Result<(), String> {
    let id = opt_value(args, "--id")
        .or_else(|| positionals(args).into_iter().nth(1))
        .ok_or("trace requires a job id: trace <job-id>")?;
    let path = format!("/jobs/{id}/trace");
    let mut response = client::get(addr, &path).map_err(|e| format!("request failed: {e}"))?;
    for _ in 0..40 {
        if response.status != 202 {
            break;
        }
        std::thread::sleep(Duration::from_millis(250));
        response = client::get(addr, &path).map_err(|e| format!("request failed: {e}"))?;
    }
    if response.status != 200 {
        print!("{}", response.body_str());
        return Err(format!("trace failed with HTTP {}", response.status));
    }
    print_trace(&response.body_str())
}

/// Returns the string or int value of the attribute named `key`.
fn attr<'a>(attrs: &'a [Value], key: &str) -> Option<&'a str> {
    attrs.iter().find_map(|a| {
        if a.get("key").and_then(Value::as_str) == Some(key) {
            let value = a.get("value")?;
            value
                .get("stringValue")
                .or_else(|| value.get("intValue"))
                .and_then(Value::as_str)
        } else {
            None
        }
    })
}

fn span_field<'a>(span: &'a Value, key: &str) -> &'a str {
    span.get(key).and_then(Value::as_str).unwrap_or("")
}

fn span_nanos(span: &Value, key: &str) -> u64 {
    span_field(span, key).parse().unwrap_or(0)
}

/// Pretty-prints one OTLP request-trace document as an indented span tree
/// with durations, marking the critical stage and subsystem. Fleet traces
/// hold one resource group per node: spans from every group are merged
/// into a single tree (backend subtrees arrive parented on the
/// coordinator's per-point anchors), while the summary attributes come
/// from the first (coordinator) group.
fn print_trace(text: &str) -> Result<(), String> {
    let doc = parse(text.trim_end()).map_err(|e| format!("bad trace document: {e}"))?;
    let groups = doc
        .get("resourceSpans")
        .and_then(Value::as_arr)
        .ok_or("trace document has no resourceSpans")?;
    let empty = Vec::new();
    let resource_attrs = groups
        .first()
        .and_then(|g| g.get("resource"))
        .and_then(|r| r.get("attributes"))
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    let mut spans: Vec<&Value> = Vec::new();
    for group in groups {
        if let Some(group_spans) = group
            .get("scopeSpans")
            .and_then(Value::as_arr)
            .and_then(|ss| ss.first())
            .and_then(|s| s.get("spans"))
            .and_then(Value::as_arr)
        {
            spans.extend(group_spans.iter());
        }
    }
    if spans.is_empty() {
        return Err("trace document has no spans".to_owned());
    }

    let critical_stage = attr(resource_attrs, "refrint.request_critical_stage").unwrap_or("-");
    let critical_subsystem = attr(resource_attrs, "refrint.run_critical_subsystem");
    if let Some(first) = spans.first() {
        println!("trace {}", span_field(first, "traceId"));
    }
    for (key, label) in [
        ("refrint.job", "job"),
        ("refrint.job_kind", "kind"),
        ("refrint.job_cached", "cached"),
        ("refrint.request_total_nanos", "total_nanos"),
        ("refrint.points_total", "points"),
        ("refrint.points_stitched", "points stitched"),
        ("refrint.fleet_straggler", "fleet straggler"),
    ] {
        if let Some(v) = attr(resource_attrs, key) {
            println!("{label}: {v}");
        }
    }

    // Index spans by id and group children under their parent.
    let known: Vec<&str> = spans.iter().map(|s| span_field(s, "spanId")).collect();
    let roots: Vec<&Value> = spans
        .iter()
        .filter(|s| !known.contains(&span_field(s, "parentSpanId")))
        .copied()
        .collect();
    for root in roots {
        print_span(root, &spans, 0, critical_stage, critical_subsystem);
    }
    if let Some(subsystem) = critical_subsystem {
        println!("run critical subsystem: {subsystem}");
    }
    if let Some(step) = attr(resource_attrs, "refrint.fleet_critical_step") {
        println!("fleet critical step: {step}");
    }
    println!("request critical stage: {critical_stage}");
    Ok(())
}

fn print_span(
    span: &Value,
    all: &[&Value],
    depth: usize,
    critical_stage: &str,
    critical_subsystem: Option<&str>,
) {
    let name = span_field(span, "name");
    let dur =
        span_nanos(span, "endTimeUnixNano").saturating_sub(span_nanos(span, "startTimeUnixNano"));
    let empty = Vec::new();
    let attrs = span
        .get("attributes")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    // Simulator spans carry cycle timestamps, not host nanoseconds.
    let duration = if attr(attrs, "refrint.sim_cycles").is_some() {
        format!("{dur} cycles")
    } else {
        format!("{:.3} ms", dur as f64 / 1e6)
    };
    let critical = name.strip_prefix("stage/") == Some(critical_stage)
        || attr(attrs, "refrint.subsystem").is_some_and(|s| Some(s) == critical_subsystem);
    let marker = if critical { "  <== critical" } else { "" };
    let node = attr(attrs, "refrint.node")
        .map(|n| format!("  @{n}"))
        .unwrap_or_default();
    println!("{}{name}  [{duration}]{node}{marker}", "  ".repeat(depth));
    let id = span_field(span, "spanId");
    for &child in all {
        if span_field(child, "parentSpanId") == id {
            print_span(child, all, depth + 1, critical_stage, critical_subsystem);
        }
    }
}

fn find_bytes(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// `watch <job-id>`: follows the chunked ndjson stream from
/// `GET /jobs/<id>/progress`, printing one line per snapshot. The stream
/// is read incrementally off a raw socket (the shared client helper waits
/// for EOF, which would defeat a live view).
fn watch_command(args: &[String], addr: SocketAddr) -> Result<(), String> {
    let id = opt_value(args, "--id")
        .or_else(|| positionals(args).into_iter().nth(1))
        .ok_or("watch requires a job id: watch <job-id>")?;
    let raw = has_flag(args, "--raw");

    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("socket: {e}"))?;
    let request =
        format!("GET /jobs/{id}/progress HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;

    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_bytes(&buf, b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut tmp).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed before the response header".to_owned());
        }
        buf.extend_from_slice(&tmp[..n]);
    };
    let header = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let status: u16 = header
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if status != 200 {
        while let Ok(n) = stream.read(&mut tmp) {
            if n == 0 {
                break;
            }
            buf.extend_from_slice(&tmp[..n]);
        }
        print!("{}", String::from_utf8_lossy(&buf[header_end..]));
        return Err(format!("watch failed with HTTP {status}"));
    }
    buf.drain(..header_end);

    let mut last_status = String::new();
    'stream: loop {
        // Drain every complete chunk already buffered; each chunk is one
        // ndjson snapshot line.
        while let Some(size_end) = find_bytes(&buf, b"\r\n") {
            let size_hex = String::from_utf8_lossy(&buf[..size_end]).trim().to_owned();
            let size = usize::from_str_radix(&size_hex, 16)
                .map_err(|_| format!("bad chunk size `{size_hex}`"))?;
            if size == 0 {
                break 'stream;
            }
            if buf.len() < size_end + 2 + size + 2 {
                break;
            }
            let line = String::from_utf8_lossy(&buf[size_end + 2..size_end + 2 + size])
                .trim_end()
                .to_owned();
            buf.drain(..size_end + 2 + size + 2);
            if let Ok(doc) = parse(&line) {
                if let Some(s) = doc.get("status").and_then(Value::as_str) {
                    last_status = s.to_owned();
                }
                if raw {
                    println!("{line}");
                } else {
                    println!("{}", format_progress(&doc));
                }
            } else if raw {
                println!("{line}");
            }
        }
        let n = stream.read(&mut tmp).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&tmp[..n]);
    }
    if last_status == "failed" {
        Err("job failed".to_owned())
    } else {
        Ok(())
    }
}

/// Renders one progress snapshot as a single human-readable line.
fn format_progress(doc: &Value) -> String {
    let status = doc.get("status").and_then(Value::as_str).unwrap_or("?");
    let Some(total) = doc.get("total").and_then(Value::as_u64) else {
        return format!("status {status}");
    };
    let done = doc.get("done").and_then(Value::as_u64).unwrap_or(0);
    let pct = (done * 100).checked_div(total).unwrap_or(0);
    let rate = doc
        .get("refs_per_sec")
        .and_then(Value::as_num)
        .unwrap_or(0.0);
    let eta = doc
        .get("eta_seconds")
        .and_then(Value::as_num)
        .map(|e| format!("{e:.1}s"))
        .unwrap_or_else(|| "-".to_owned());
    let nodes = match doc.get("per_node") {
        Some(Value::Obj(entries)) => entries
            .iter()
            .map(|(node, count)| format!("{node}:{}", count.as_u64().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(" "),
        _ => String::new(),
    };
    format!("{status} {done}/{total} ({pct}%)  refs/s {rate:.0}  eta {eta}  [{nodes}]")
}

/// Scrapes `GET /metrics` into a map from metric name to the sum of its
/// sample values (labelled series collapse onto their base name, which is
/// exactly what the subsystem-cycle consistency check wants).
fn scrape_counters(addr: SocketAddr) -> Result<std::collections::HashMap<String, f64>, String> {
    let response = client::get(addr, "/metrics").map_err(|e| format!("metrics: {e}"))?;
    if response.status != 200 {
        return Err(format!("metrics returned HTTP {}", response.status));
    }
    let mut map = std::collections::HashMap::new();
    for line in response.body_str().lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
            continue;
        };
        let base = name.split('{').next().unwrap_or(name);
        if let Ok(v) = value.parse::<f64>() {
            *map.entry(base.to_owned()).or_insert(0.0) += v;
        }
    }
    Ok(map)
}

/// `obs-verify`: replays a known workload — two distinct runs and one
/// repeat of the first — against a live node or fleet, then cross-checks
/// the `/metrics` deltas against ground truth computed from the responses
/// themselves. Every run uses fresh seeds so warm caches from earlier
/// traffic cannot skew the counts. Fails loudly on any drift.
fn obs_verify_command(args: &[String], addr: SocketAddr) -> Result<(), String> {
    let numeric = |flag: &str, default: u64| -> Result<u64, String> {
        match opt_value(args, flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad {flag} `{v}`")),
        }
    };
    let refs = numeric("--refs", 400)?;
    let cores = numeric("--cores", 2)?;
    // Seeds unique to this invocation, so the first two runs are always
    // cache misses even against a long-lived server. Kept well below 2^53:
    // JSON numbers travel as f64, where bigger integers collapse onto
    // their neighbours.
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ u64::from(std::process::id());
    let seed_a = nonce % 1_000_000_000_000 + 1_000;
    let seed_b = seed_a + 1;

    // Probe the topology before the first snapshot so the probe itself
    // stays out of the delta window.
    let coordinator = client::get(addr, "/backends")
        .map_err(|e| format!("probe: {e}"))?
        .status
        == 200;
    let mode = if coordinator {
        "coordinator"
    } else {
        "single node"
    };
    println!("obs-verify: target {addr} ({mode}), refs {refs}, cores {cores}");

    let before = scrape_counters(addr)?;
    let run = |seed: u64| -> Result<HttpResponse, String> {
        let body = format!("{{\"app\":\"lu\",\"refs\":{refs},\"cores\":{cores},\"seed\":{seed}}}");
        client::post(addr, "/run", body.as_bytes()).map_err(|e| format!("run: {e}"))
    };
    let first = run(seed_a)?;
    let second = run(seed_b)?;
    let repeat = run(seed_a)?;
    let after = scrape_counters(addr)?;

    let mut failures: Vec<&str> = Vec::new();
    let mut check = |name: &'static str, ok: bool, detail: String| {
        if ok {
            println!("ok:   {name} ({detail})");
        } else {
            println!("FAIL: {name} ({detail})");
            failures.push(name);
        }
    };
    let delta = |name: &str| -> f64 {
        after.get(name).copied().unwrap_or(0.0) - before.get(name).copied().unwrap_or(0.0)
    };
    let refs_of = |r: &HttpResponse| -> u64 {
        parse(r.body_str().trim_end())
            .ok()
            .and_then(|doc| doc.get("counts")?.get("dl1_accesses")?.as_u64())
            .unwrap_or(0)
    };

    check(
        "runs succeed",
        first.status == 200 && second.status == 200 && repeat.status == 200,
        format!(
            "HTTP {} / {} / {}",
            first.status, second.status, repeat.status
        ),
    );
    check(
        "cache headers",
        first.header("X-Refrint-Cache") == Some("miss")
            && second.header("X-Refrint-Cache") == Some("miss")
            && repeat.header("X-Refrint-Cache") == Some("hit"),
        format!(
            "miss/miss/hit expected, got {}/{}/{}",
            first.header("X-Refrint-Cache").unwrap_or("-"),
            second.header("X-Refrint-Cache").unwrap_or("-"),
            repeat.header("X-Refrint-Cache").unwrap_or("-"),
        ),
    );
    check(
        "cache hit is byte-identical",
        repeat.body == first.body,
        format!("{} vs {} bytes", repeat.body.len(), first.body.len()),
    );
    // Between the two snapshots this client sent exactly three /run
    // requests plus the closing /metrics scrape, which counts itself.
    check(
        "http requests counted once each",
        delta("refrint_http_requests_total") == 4.0,
        format!("delta {}", delta("refrint_http_requests_total")),
    );
    check(
        "no http errors",
        delta("refrint_http_errors_total") == 0.0,
        format!("delta {}", delta("refrint_http_errors_total")),
    );
    check(
        "jobs counted once",
        delta("refrint_jobs_submitted_total") == 2.0
            && delta("refrint_jobs_completed_total") == 2.0
            && delta("refrint_jobs_failed_total") == 0.0,
        format!(
            "submitted {} completed {} failed {}",
            delta("refrint_jobs_submitted_total"),
            delta("refrint_jobs_completed_total"),
            delta("refrint_jobs_failed_total"),
        ),
    );
    check(
        "cache hits + misses = run requests",
        delta("refrint_cache_hits_total") == 1.0 && delta("refrint_cache_misses_total") == 2.0,
        format!(
            "hits {} misses {}",
            delta("refrint_cache_hits_total"),
            delta("refrint_cache_misses_total"),
        ),
    );
    let refs_truth = refs_of(&first) + refs_of(&second);
    check(
        "refs_simulated matches response ground truth",
        delta("refrint_refs_simulated_total") == refs_truth as f64,
        format!(
            "delta {} vs {} from response bodies",
            delta("refrint_refs_simulated_total"),
            refs_truth,
        ),
    );
    let cycles = delta("refrint_subsystem_cycles_total");
    if coordinator {
        // A coordinator never simulates locally; the cycles land on its
        // backends.
        check(
            "coordinator attributes no local subsystem cycles",
            cycles == 0.0,
            format!("delta {cycles}"),
        );
    } else {
        check(
            "subsystem cycles attributed to the simulation",
            cycles > 0.0,
            format!("delta {cycles}"),
        );
    }

    if failures.is_empty() {
        println!("obs-verify: all checks passed against {mode}");
        Ok(())
    } else {
        Err(format!(
            "obs-verify: {} check(s) drifted: {}",
            failures.len(),
            failures.join(", ")
        ))
    }
}

/// `loadtest`: N concurrent clients each issue M sequential `POST /run`
/// requests and the latency distribution is printed as JSON. One warmup
/// request populates the result cache first, so the numbers measure the
/// server's HTTP and cache path under concurrency — the serving overhead —
/// not N copies of the same simulation.
fn loadtest_command(args: &[String], addr: SocketAddr) -> Result<(), String> {
    let positive = |flag: &str, default: usize| -> Result<usize, String> {
        match opt_value(args, flag) {
            None => Ok(default),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("bad {flag} `{v}` (expected a positive integer)")),
            },
        }
    };
    let clients = positive("--clients", 32)?;
    let requests = positive("--requests", 10)?;
    let mut body = run_body(args)?;
    if body == "{}" {
        body = "{\"app\":\"lu\",\"refs\":400,\"cores\":2}".to_owned();
    }

    let warmup = client::post(addr, "/run", body.as_bytes())
        .map_err(|e| format!("warmup request failed: {e}"))?;
    if warmup.status != 200 {
        return Err(format!(
            "warmup request failed with HTTP {}: {}",
            warmup.status,
            warmup.body_str().trim()
        ));
    }

    let started = std::time::Instant::now();
    let mut latencies_micros: Vec<u64> = Vec::with_capacity(clients * requests);
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let body = body.as_str();
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests);
                    let mut errors = 0u64;
                    for _ in 0..requests {
                        let sent = std::time::Instant::now();
                        match client::post(addr, "/run", body.as_bytes()) {
                            Ok(r) if r.status == 200 => {
                                let micros =
                                    u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                                latencies.push(micros);
                            }
                            _ => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        for handle in handles {
            let (latencies, thread_errors) = handle.join().expect("loadtest thread");
            latencies_micros.extend(latencies);
            errors += thread_errors;
        }
    });
    let duration_seconds = started.elapsed().as_secs_f64();

    latencies_micros.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies_micros.is_empty() {
            return 0;
        }
        let rank =
            ((latencies_micros.len() as f64 * p).ceil() as usize).clamp(1, latencies_micros.len());
        latencies_micros[rank - 1]
    };
    let mean = if latencies_micros.is_empty() {
        0
    } else {
        latencies_micros.iter().sum::<u64>() / latencies_micros.len() as u64
    };
    let total = clients * requests;
    let rps = if duration_seconds > 0.0 {
        total as f64 / duration_seconds
    } else {
        0.0
    };
    let doc = format!(
        concat!(
            "{{\"clients\":{},\"requests_per_client\":{},\"total_requests\":{},",
            "\"errors\":{},\"duration_seconds\":{:.3},\"requests_per_second\":{:.1},",
            "\"latency_micros\":{{\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}}}\n"
        ),
        clients,
        requests,
        total,
        errors,
        duration_seconds,
        rps,
        mean,
        percentile(0.50),
        percentile(0.90),
        percentile(0.99),
        latencies_micros.last().copied().unwrap_or(0),
    );
    print!("{doc}");
    if let Some(out) = opt_value(args, "--out") {
        std::fs::write(&out, doc.as_bytes()).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    if errors > 0 {
        return Err(format!("{errors} of {total} requests failed"));
    }
    Ok(())
}

fn sweep_body(args: &[String]) -> Result<String, String> {
    let mut fields = Vec::new();
    let escape = refrint_serve::json_escape;
    if let Some(apps) = opt_value(args, "--apps") {
        let list: Vec<String> = apps
            .split(',')
            .map(|a| format!("\"{}\"", escape(a.trim())))
            .collect();
        fields.push(format!("\"apps\":[{}]", list.join(",")));
    }
    for (flag, key) in [("--refs", "refs"), ("--cores", "cores")] {
        if let Some(v) = opt_value(args, flag) {
            let n: u64 = v.parse().map_err(|_| format!("bad {flag} `{v}`"))?;
            fields.push(format!("\"{key}\":{n}"));
        }
    }
    if let Some(mode) = opt_value(args, "--mode") {
        fields.push(format!("\"mode\":\"{}\"", escape(&mode)));
    }
    Ok(format!("{{{}}}", fields.join(",")))
}
