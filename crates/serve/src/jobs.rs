//! Jobs, the job table and the result cache.
//!
//! Every simulation request becomes a [`Job`]: it is registered in the
//! shared [`JobTable`], its id is pushed through the server's bounded MPSC
//! queue, and a worker thread executes it with [`execute`]. Sync clients
//! block on the table's condvar until their job finishes; async clients
//! poll `GET /jobs/<id>`. Successful results are inserted into the
//! [`ResultCache`] under the request's canonical key, so an identical
//! request is answered with the very same bytes without re-simulating.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use refrint::experiment::ExperimentConfig;
use refrint::simulation::{ObsConfig, SimulationBuilder};
use refrint::sweep::SweepRunner;
use refrint_engine::json::escape;
use refrint_obs::anomaly::AnomalyTuning;
use refrint_obs::recorder::ObsSummary;
use refrint_obs::span::{DispatchSpan, RequestTrace, Subsystem};
use refrint_workloads::apps::AppPreset;

use crate::coordinator::PointRequest;

/// What a worker executes for one job.
#[derive(Debug, Clone)]
pub enum JobWork {
    /// One simulation: run `app`, or replay the builder's trace when `app`
    /// is `None`.
    Run {
        /// The validated builder (presets and overrides already applied),
        /// boxed to keep the enum's variants comparably sized.
        builder: Box<SimulationBuilder>,
        /// The preset to run; `None` replays the configured trace.
        app: Option<AppPreset>,
        /// The request re-expressed as forwardable `POST /run` fields, so
        /// a coordinator can dispatch it to a backend unchanged.
        point: PointRequest,
    },
    /// A full experiment sweep, run sequentially inside the worker.
    Sweep {
        /// The validated experiment configuration.
        config: ExperimentConfig,
        /// Anomaly tunables for the `anomalies` array (the default tuning
        /// reproduces the CLI's bytes exactly).
        anomaly: AnomalyTuning,
    },
}

impl JobWork {
    /// `"run"` or `"sweep"` — the kind string reported by `/jobs/<id>`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobWork::Run { .. } => "run",
            JobWork::Sweep { .. } => "sweep",
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// In the queue, not yet claimed by a worker.
    Queued,
    /// Claimed by a worker, simulating now.
    Running,
    /// Finished successfully; the result bytes are available.
    Done,
    /// Finished with an error; the error document is available.
    Failed,
}

impl JobStatus {
    /// The status label used in job JSON documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// Where and when one point of a fanned-out job actually ran, recorded by
/// the coordinator for trace stitching (`/jobs/<id>/trace`) and the live
/// progress stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointOutcome {
    /// The point's index in the sweep's deterministic enumeration (0 for
    /// single-run jobs); also the anchor-span slot in the stitched trace.
    pub index: usize,
    /// Stable display label (`lu/sram`, `fft/50us/R.valid`).
    pub label: String,
    /// Where the point ran: a backend address, or `result-cache`.
    pub node: String,
    /// The backend-side job id (`x-refrint-job`), when the point was
    /// dispatched — the handle for fetching the backend's span tree.
    pub backend_job: Option<String>,
    /// Dispatch start, nanoseconds after the job's execute epoch.
    pub start_nanos: u64,
    /// Dispatch round-trip duration in nanoseconds.
    pub dur_nanos: u64,
}

/// Live progress of a fanned-out job, shared between the executing worker
/// and `GET /jobs/<id>/progress` streamers. Counters are atomics so the
/// worker's hot path never blocks on a streaming reader.
#[derive(Debug)]
pub struct JobProgress {
    started: Instant,
    total: u64,
    done: AtomicU64,
    refs: AtomicU64,
    per_node: Mutex<BTreeMap<String, u64>>,
}

impl JobProgress {
    /// Fresh progress for a job of `total` points.
    #[must_use]
    pub fn new(total: u64) -> JobProgress {
        JobProgress {
            started: Instant::now(),
            total,
            done: AtomicU64::new(0),
            refs: AtomicU64::new(0),
            per_node: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one completed point: where it ran and how many data
    /// references it simulated.
    pub fn record_point(&self, node: &str, refs: u64) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.refs.fetch_add(refs, Ordering::Relaxed);
        let mut per_node = self.per_node.lock().expect("progress per-node lock");
        *per_node.entry(node.to_owned()).or_insert(0) += 1;
    }

    /// Points completed so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// One ndjson progress line: points done/total, refs/sec throughput,
    /// a naive linear ETA (`null` until the first point lands) and the
    /// per-node completion shares.
    #[must_use]
    pub fn snapshot(&self, status: &str) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let refs = self.refs.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        let refs_per_sec = if elapsed > 0.0 {
            refs as f64 / elapsed
        } else {
            0.0
        };
        let eta = if done > 0 && done < self.total {
            format!("{:.3}", elapsed / done as f64 * (self.total - done) as f64)
        } else if done >= self.total {
            "0.000".to_owned()
        } else {
            "null".to_owned()
        };
        let per_node = self.per_node.lock().expect("progress per-node lock");
        let nodes: Vec<String> = per_node
            .iter()
            .map(|(node, count)| format!("\"{}\":{count}", escape(node)))
            .collect();
        format!(
            "{{\"status\":\"{}\",\"total\":{},\"done\":{done},\"refs\":{refs},\
             \"elapsed_seconds\":{elapsed:.3},\"refs_per_sec\":{refs_per_sec:.1},\
             \"eta_seconds\":{eta},\"per_node\":{{{}}}}}\n",
            escape(status),
            self.total,
            nodes.join(","),
        )
    }
}

/// The outcome of executing a job.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// HTTP status the result is served with (200, or 500 on failure).
    pub status: u16,
    /// The exact response bytes (shared with the cache).
    pub body: Arc<Vec<u8>>,
    /// Data references simulated (0 on failure), for the metrics counters.
    pub refs: u64,
    /// Wall-clock seconds spent simulating, for the refs/sec gauge.
    pub sim_seconds: f64,
    /// Simulated cycles attributed per subsystem (indexed by
    /// [`Subsystem::index`]); run jobs execute with the observability
    /// recorder at default sampling, sweep jobs report zeros.
    pub subsystem_cycles: [u64; Subsystem::COUNT],
    /// Host nanoseconds the job waited in the queue before a worker
    /// claimed it (0 for cached results).
    pub queue_nanos: u64,
    /// Host nanoseconds the worker spent executing (0 for cached results).
    pub execute_nanos: u64,
    /// The run's full observability summary, for the `/jobs/<id>/trace`
    /// span tree (run jobs only; sweeps and failures carry `None`).
    pub obs: Option<Arc<ObsSummary>>,
    /// Config label of the executed run (empty for sweeps/failures).
    pub config_label: String,
    /// Workload of the executed run (empty for sweeps/failures).
    pub workload: String,
    /// Per-backend dispatch attempts recorded by the coordinator (empty
    /// for locally-executed jobs), spliced into `/jobs/<id>/trace`.
    pub dispatch: Vec<DispatchSpan>,
    /// Where each point of a fanned-out job ran (empty for local jobs),
    /// in point order — the stitching plan for the fleet trace.
    pub points: Vec<PointOutcome>,
}

impl JobOutput {
    /// An output that simply serves pre-existing bytes (cache hits).
    #[must_use]
    pub fn from_bytes(status: u16, body: Arc<Vec<u8>>) -> JobOutput {
        JobOutput {
            status,
            body,
            refs: 0,
            sim_seconds: 0.0,
            subsystem_cycles: [0; Subsystem::COUNT],
            queue_nanos: 0,
            execute_nanos: 0,
            obs: None,
            config_label: String::new(),
            workload: String::new(),
            dispatch: Vec::new(),
            points: Vec::new(),
        }
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct Job {
    /// The job id (`j` + hex counter), unique for the server's lifetime.
    pub id: String,
    /// `"run"` or `"sweep"`.
    pub kind: &'static str,
    /// Canonical cache key of the request that created the job.
    pub cache_key: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// The result, present once `status` is `Done` or `Failed`.
    pub output: Option<JobOutput>,
    /// Whether the result was served from the cache without simulating.
    pub cached: bool,
    /// The request trace recorded by the connection handler, attached
    /// after the response is written (`GET /jobs/<id>/trace`).
    pub trace: Option<RequestTrace>,
    /// Live progress, attached when a coordinator worker claims the job
    /// (`GET /jobs/<id>/progress` streams from it while the job runs).
    pub progress: Option<Arc<JobProgress>>,
}

impl Job {
    /// The job-status JSON document (`GET /jobs/<id>`).
    #[must_use]
    pub fn status_doc(&self) -> Vec<u8> {
        format!(
            "{{\"job\":\"{}\",\"kind\":\"{}\",\"status\":\"{}\",\"cached\":{}}}\n",
            escape(&self.id),
            self.kind,
            self.status.label(),
            self.cached
        )
        .into_bytes()
    }
}

/// The shared job table: jobs by id, with completed jobs pruned FIFO so a
/// long-lived server's memory stays bounded.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: HashMap<String, Job>,
    finished_order: VecDeque<String>,
    retained_finished: usize,
}

impl JobTable {
    /// A table that retains at most `retained_finished` completed jobs.
    #[must_use]
    pub fn new(retained_finished: usize) -> Self {
        JobTable {
            jobs: HashMap::new(),
            finished_order: VecDeque::new(),
            retained_finished: retained_finished.max(1),
        }
    }

    /// Registers a new job.
    pub fn insert(&mut self, job: Job) {
        if job.status == JobStatus::Done || job.status == JobStatus::Failed {
            self.finished_order.push_back(job.id.clone());
        }
        self.jobs.insert(job.id.clone(), job);
        self.prune();
    }

    /// Looks a job up by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&Job> {
        self.jobs.get(id)
    }

    /// Transitions a job to its final state and records the output.
    pub fn finish(&mut self, id: &str, output: JobOutput) {
        if let Some(job) = self.jobs.get_mut(id) {
            job.status = if output.status == 200 {
                JobStatus::Done
            } else {
                JobStatus::Failed
            };
            job.output = Some(output);
            self.finished_order.push_back(id.to_owned());
            self.prune();
        }
    }

    /// Removes a job outright (used when enqueueing fails after
    /// registration).
    pub fn remove(&mut self, id: &str) {
        self.jobs.remove(id);
        self.finished_order.retain(|k| k != id);
    }

    /// Sets a job's status (used for the queued→running transition).
    pub fn set_status(&mut self, id: &str, status: JobStatus) {
        if let Some(job) = self.jobs.get_mut(id) {
            job.status = status;
        }
    }

    /// Attaches the request trace recorded by the connection handler.
    pub fn attach_trace(&mut self, id: &str, trace: RequestTrace) {
        if let Some(job) = self.jobs.get_mut(id) {
            job.trace = Some(trace);
        }
    }

    /// Attaches live progress when a worker claims the job.
    pub fn set_progress(&mut self, id: &str, progress: Arc<JobProgress>) {
        if let Some(job) = self.jobs.get_mut(id) {
            job.progress = Some(progress);
        }
    }

    fn prune(&mut self) {
        while self.finished_order.len() > self.retained_finished {
            if let Some(id) = self.finished_order.pop_front() {
                self.jobs.remove(&id);
            }
        }
    }

    /// Number of tracked jobs (for tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// The job table plus its condvar, shared between connection handlers and
/// workers.
#[derive(Debug)]
pub struct SharedJobs {
    /// The table, behind its lock.
    pub table: Mutex<JobTable>,
    /// Signalled every time a job reaches a final state.
    pub done: Condvar,
}

impl SharedJobs {
    /// A fresh shared table.
    #[must_use]
    pub fn new(retained_finished: usize) -> Self {
        SharedJobs {
            table: Mutex::new(JobTable::new(retained_finished)),
            done: Condvar::new(),
        }
    }

    /// Blocks until job `id` finishes or `deadline` passes; returns the
    /// output if it finished in time.
    #[must_use]
    pub fn wait_for(&self, id: &str, deadline: Duration) -> Option<JobOutput> {
        let start = Instant::now();
        let mut table = self.table.lock().expect("job table lock");
        loop {
            if let Some(job) = table.get(id) {
                if let Some(output) = &job.output {
                    return Some(output.clone());
                }
            } else {
                return None;
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return None;
            }
            let (guard, timeout) = self
                .done
                .wait_timeout(table, deadline - elapsed)
                .expect("job table lock");
            table = guard;
            if timeout.timed_out() {
                // Check one final time before giving up.
                if let Some(output) = table.get(id).and_then(|j| j.output.clone()) {
                    return Some(output);
                }
                return None;
            }
        }
    }

    /// Records a job's completion and wakes every sync waiter.
    pub fn finish(&self, id: &str, output: JobOutput) {
        let mut table = self.table.lock().expect("job table lock");
        table.finish(id, output);
        self.done.notify_all();
    }

    /// Attaches a request trace to a job.
    pub fn set_trace(&self, id: &str, trace: RequestTrace) {
        let mut table = self.table.lock().expect("job table lock");
        table.attach_trace(id, trace);
    }
}

/// Executes one job's work. Never panics: runtime failures (e.g. a trace
/// file deleted between validation and execution) become a 500 with a JSON
/// error body.
#[must_use]
pub fn execute(work: &JobWork) -> JobOutput {
    match work {
        JobWork::Run { builder, app, .. } => run_one(builder, *app),
        JobWork::Sweep { config, anomaly } => run_sweep(config, *anomaly),
    }
}

fn failure(reason: &str) -> JobOutput {
    JobOutput::from_bytes(
        500,
        Arc::new(
            format!(
                "{{\"error\":{{\"kind\":\"execution_failed\",\"reason\":\"{}\"}}}}\n",
                escape(reason)
            )
            .into_bytes(),
        ),
    )
}

fn run_one(builder: &SimulationBuilder, app: Option<AppPreset>) -> JobOutput {
    // Observability at default sampling feeds the per-subsystem cycle
    // series on /metrics. Recording is non-perturbing, so the response
    // bytes stay identical to the CLI's (the test below proves it).
    let obs_builder = builder.clone().observability(ObsConfig::default());
    let mut sim = match obs_builder.build() {
        Ok(sim) => sim,
        Err(e) => return failure(&e.to_string()),
    };
    let start = Instant::now();
    let outcome = match app {
        Some(app) => sim.run(app),
        None => match sim.replay() {
            Ok(outcome) => outcome,
            Err(e) => return failure(&e.to_string()),
        },
    };
    let sim_seconds = start.elapsed().as_secs_f64();
    let summary = sim.obs_summary();
    let mut subsystem_cycles = [0; Subsystem::COUNT];
    for t in &summary.per_subsystem {
        subsystem_cycles[t.subsystem.index()] = t.cycles;
    }
    // Exactly the bytes `refrint-cli run --format json` prints.
    let body = format!("{}\n", refrint::json::report(&outcome.report));
    JobOutput {
        status: 200,
        body: Arc::new(body.into_bytes()),
        refs: outcome.report.counts.dl1_accesses,
        sim_seconds,
        subsystem_cycles,
        queue_nanos: 0,
        execute_nanos: 0,
        obs: Some(Arc::new(summary)),
        config_label: outcome.config_label().to_owned(),
        workload: outcome.workload().to_owned(),
        dispatch: Vec::new(),
        points: Vec::new(),
    }
}

fn run_sweep(config: &ExperimentConfig, anomaly: AnomalyTuning) -> JobOutput {
    // Sequential inside the worker: concurrency comes from the worker
    // pool, and the merged results are identical for any worker count.
    let start = Instant::now();
    let results = match SweepRunner::new(config.clone()).sequential().run() {
        Ok(results) => results,
        Err(e) => return failure(&e.to_string()),
    };
    let sim_seconds = start.elapsed().as_secs_f64();
    let refs = results
        .sram
        .values()
        .chain(results.edram.values())
        .map(|r| r.counts.dl1_accesses)
        .sum();
    // With the default tuning these are exactly the bytes
    // `refrint-cli sweep --format json` prints.
    let body = format!("{}\n", refrint::json::sweep_tuned(&results, anomaly));
    let mut output = JobOutput::from_bytes(200, Arc::new(body.into_bytes()));
    output.refs = refs;
    output.sim_seconds = sim_seconds;
    output
}

/// A small LRU cache from canonical request keys to result bytes.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<String, Arc<Vec<u8>>>,
    order: VecDeque<String>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, refreshing its LRU position on a hit.
    #[must_use]
    pub fn get(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        let hit = self.map.get(key).cloned();
        if hit.is_some() {
            if let Some(pos) = self.order.iter().position(|k| k == key) {
                let k = self.order.remove(pos).expect("position is in range");
                self.order.push_back(k);
            }
        }
        hit
    }

    /// Inserts a result, evicting the least recently used entry when full.
    pub fn insert(&mut self, key: String, body: Arc<Vec<u8>>) {
        if self.map.insert(key.clone(), body).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }

    /// Number of cached results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint::simulation::Simulation;

    #[test]
    fn run_jobs_produce_the_cli_bytes() {
        let builder = Simulation::builder().cores(2).refs_per_thread(400).seed(3);
        let out = execute(&JobWork::Run {
            builder: Box::new(builder.clone()),
            app: Some(AppPreset::Lu),
            point: PointRequest::default(),
        });
        assert_eq!(out.status, 200);
        assert!(out.refs > 0);
        assert!(
            out.subsystem_cycles.iter().sum::<u64>() > 0,
            "run jobs attribute cycles for the /metrics series"
        );
        // The direct simulation runs WITHOUT observability; identical
        // bytes double as a span-neutrality check.
        let mut direct = builder.build().unwrap();
        let expected = format!(
            "{}\n",
            refrint::json::report(&direct.run(AppPreset::Lu).report)
        );
        assert_eq!(out.body.as_slice(), expected.as_bytes());
    }

    #[test]
    fn failed_runs_are_500_json_not_panics() {
        let builder = Simulation::builder().cores(2).trace("/nonexistent/x.rft");
        let out = execute(&JobWork::Run {
            builder: Box::new(builder),
            app: None,
            point: PointRequest::default(),
        });
        assert_eq!(out.status, 500);
        assert!(String::from_utf8_lossy(&out.body).contains("execution_failed"));
    }

    #[test]
    fn sweep_jobs_produce_the_cli_bytes() {
        let config = ExperimentConfig {
            apps: vec![AppPreset::Lu],
            retentions_us: vec![50],
            policies: vec![refrint_edram::policy::RefreshPolicy::recommended()],
            refs_per_thread: 500,
            cores: 2,
            ..ExperimentConfig::default()
        };
        let out = execute(&JobWork::Sweep {
            config: config.clone(),
            anomaly: AnomalyTuning::default(),
        });
        assert_eq!(out.status, 200);
        let results = SweepRunner::new(config).sequential().run().unwrap();
        let expected = format!("{}\n", refrint::json::sweep(&results));
        assert_eq!(out.body.as_slice(), expected.as_bytes());
    }

    #[test]
    fn cache_is_lru_with_capacity() {
        let mut cache = ResultCache::new(2);
        let body = |s: &str| Arc::new(s.as_bytes().to_vec());
        cache.insert("a".into(), body("1"));
        cache.insert("b".into(), body("2"));
        assert!(cache.get("a").is_some()); // refresh a
        cache.insert("c".into(), body("3")); // evicts b
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn job_table_prunes_only_finished_jobs() {
        let mut table = JobTable::new(2);
        for i in 0..5 {
            table.insert(Job {
                id: format!("j{i}"),
                kind: "run",
                cache_key: String::new(),
                status: JobStatus::Queued,
                output: None,
                cached: false,
                trace: None,
                progress: None,
            });
        }
        assert_eq!(table.len(), 5, "queued jobs are never pruned");
        for i in 0..5 {
            table.finish(
                &format!("j{i}"),
                JobOutput::from_bytes(200, Arc::new(Vec::new())),
            );
        }
        assert_eq!(table.len(), 2, "finished jobs are pruned FIFO");
        assert!(table.get("j4").is_some());
        assert!(table.get("j0").is_none());
    }

    #[test]
    fn waiters_time_out_and_see_finishes() {
        let shared = Arc::new(SharedJobs::new(8));
        shared.table.lock().unwrap().insert(Job {
            id: "j1".into(),
            kind: "run",
            cache_key: String::new(),
            status: JobStatus::Queued,
            output: None,
            cached: false,
            trace: None,
            progress: None,
        });
        assert!(shared.wait_for("j1", Duration::from_millis(50)).is_none());
        let bg = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                shared.finish("j1", JobOutput::from_bytes(200, Arc::new(b"ok".to_vec())));
            })
        };
        let out = shared.wait_for("j1", Duration::from_secs(5)).unwrap();
        assert_eq!(out.body.as_slice(), b"ok");
        bg.join().unwrap();
    }
}
