//! A tiny blocking HTTP/1.1 client for the service's own tests, the
//! `serve-client` binary and the CI smoke job.
//!
//! One request per connection (`Connection: close`), no TLS, no redirects
//! — exactly the subset the server speaks.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Response headers in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy — the server only emits UTF-8).
    #[must_use]
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The first header with the given name (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issues a `GET`.
///
/// # Errors
///
/// Any socket error, or a malformed response.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// Issues a `POST` with a body.
///
/// # Errors
///
/// Any socket error, or a malformed response.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body))
}

/// Issues one request and reads the full response.
///
/// # Errors
///
/// Any socket error, or a malformed response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<HttpResponse> {
    request_with_headers(addr, method, path, body, &[])
}

/// [`request`] with extra request headers (e.g. a `traceparent` to
/// propagate a trace context into the server).
///
/// # Errors
///
/// Any socket error, or a malformed response.
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    headers: &[(&str, &str)],
) -> std::io::Result<HttpResponse> {
    request_with_timeouts(
        addr,
        method,
        path,
        body,
        headers,
        Timeouts {
            connect: Duration::from_secs(10),
            read: Duration::from_secs(600),
            write: Duration::from_secs(10),
        },
    )
}

/// Per-request socket deadlines for [`request_with_timeouts`].
#[derive(Debug, Clone, Copy)]
pub struct Timeouts {
    /// Deadline for the TCP connect.
    pub connect: Duration,
    /// Deadline for each read from the socket.
    pub read: Duration,
    /// Deadline for each write to the socket.
    pub write: Duration,
}

/// [`request_with_headers`] with caller-chosen socket deadlines — the
/// coordinator's dispatch path wants a bounded read timeout instead of
/// the interactive client's generous 600 s.
///
/// # Errors
///
/// Any socket error, a deadline overrun, or a malformed response.
pub fn request_with_timeouts(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    headers: &[(&str, &str)],
    timeouts: Timeouts,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeouts.connect)?;
    stream.set_read_timeout(Some(timeouts.read))?;
    stream.set_write_timeout(Some(timeouts.write))?;

    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some(body) = body {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body)?;
    }
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn bad(reason: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, reason.to_owned())
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 headers"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let body = raw[head_end + 4..].to_vec();
    // The server always sends Content-Length; trust the close-delimited
    // read but double-check when the header is present.
    if let Some(len) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if body.len() != len {
            return Err(bad("body length disagrees with Content-Length"));
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nX-Refrint-Cache: hit\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("application/json"));
        assert_eq!(r.header("X-Refrint-Cache"), Some("hit"));
        assert_eq!(r.body_str(), "{}");
    }

    #[test]
    fn rejects_truncated_responses() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab").is_err());
        assert!(parse_response(b"garbage").is_err());
    }
}
