//! The JSON request schemas of the service and their validation.
//!
//! `POST /run` and `POST /sweep` bodies are parsed with the shared
//! [`refrint_engine::json`] parser, checked field by field (unknown fields
//! are rejected so typos fail loudly), and resolved into an executable
//! [`JobWork`] plus a **canonical cache key**. The key is derived from the
//! *validated* configuration — the label, seed, scale and chip size after
//! presets and defaults are applied — so two requests that spell the same
//! simulation differently still hit the same cache entry, and the cached
//! bytes are bit-identical to a fresh run by construction.

use std::path::{Path, PathBuf};

use refrint::experiment::{ExperimentConfig, TraceSpec};
use refrint::simulation::Simulation;
use refrint::{CoherenceProtocol, RetentionProfile};
use refrint_edram::model::PolicyRegistry;
use refrint_edram::policy::RefreshPolicy;
use refrint_engine::json::{escape, Value};
use refrint_obs::anomaly::AnomalyTuning;
use refrint_workloads::apps::AppPreset;

use crate::coordinator::PointRequest;
use crate::jobs::JobWork;

/// A typed API failure: HTTP status, machine-readable kind, human reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status the error is answered with (always 4xx/5xx).
    pub status: u16,
    /// Stable machine-readable kind (e.g. `bad_json`, `unknown_policy`).
    pub kind: &'static str,
    /// Human-readable description.
    pub reason: String,
}

impl ApiError {
    /// Builds an error.
    #[must_use]
    pub fn new(status: u16, kind: &'static str, reason: impl Into<String>) -> Self {
        ApiError {
            status,
            kind,
            reason: reason.into(),
        }
    }

    /// The JSON error document this error is answered with.
    #[must_use]
    pub fn body(&self) -> Vec<u8> {
        format!(
            "{{\"error\":{{\"kind\":\"{}\",\"reason\":\"{}\"}}}}\n",
            escape(self.kind),
            escape(&self.reason)
        )
        .into_bytes()
    }
}

/// Whether the client waits for the result or polls `/jobs/<id>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// The connection blocks until the job completes (the default).
    #[default]
    Sync,
    /// The request is answered `202 Accepted` with a job id immediately.
    Async,
}

/// A fully validated request, ready to enqueue.
#[derive(Debug, Clone)]
pub struct ValidatedRequest {
    /// What the worker will execute.
    pub work: JobWork,
    /// Canonical cache key (see the module docs).
    pub cache_key: String,
    /// Sync or async submission.
    pub mode: SubmitMode,
}

fn schema_err(reason: impl Into<String>) -> ApiError {
    ApiError::new(422, "schema", reason)
}

fn str_field(v: &Value, key: &str) -> Result<String, ApiError> {
    v.as_str()
        .map(str::to_owned)
        .ok_or_else(|| schema_err(format!("\"{key}\" must be a string")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, ApiError> {
    v.as_u64()
        .ok_or_else(|| schema_err(format!("\"{key}\" must be a non-negative integer")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, ApiError> {
    Ok(u64_field(v, key)? as usize)
}

fn f64_field(v: &Value, key: &str) -> Result<f64, ApiError> {
    v.as_num()
        .ok_or_else(|| schema_err(format!("\"{key}\" must be a number")))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, ApiError> {
    v.as_bool()
        .ok_or_else(|| schema_err(format!("\"{key}\" must be a boolean")))
}

fn mode_field(v: &Value) -> Result<SubmitMode, ApiError> {
    match v.as_str() {
        Some("sync") => Ok(SubmitMode::Sync),
        Some("async") => Ok(SubmitMode::Async),
        _ => Err(schema_err("\"mode\" must be \"sync\" or \"async\"")),
    }
}

fn parse_app(name: &str) -> Result<AppPreset, ApiError> {
    name.parse::<AppPreset>()
        .map_err(|e| ApiError::new(422, "unknown_workload", e.to_string()))
}

fn parse_policy(label: &str) -> Result<RefreshPolicy, ApiError> {
    label.parse::<RefreshPolicy>().map_err(|_| {
        let valid = PolicyRegistry::new().valid_labels();
        ApiError::new(
            422,
            "unknown_policy",
            format!(
                "unknown refresh policy `{label}`; valid labels are \
                 `P|R.all|valid|dirty|WB(n,m)` — e.g. {}",
                valid.join(", ")
            ),
        )
    })
}

fn parse_protocol(label: &str) -> Result<CoherenceProtocol, ApiError> {
    label
        .parse::<CoherenceProtocol>()
        .map_err(|e| ApiError::new(422, "unknown_protocol", e))
}

fn parse_retention_profile(label: &str) -> Result<RetentionProfile, ApiError> {
    label
        .parse::<RetentionProfile>()
        .map_err(|e| ApiError::new(422, "unknown_retention_profile", e.to_string()))
}

/// Resolves a client-supplied trace name against the server's trace
/// directory, refusing traversal outside it.
fn resolve_trace(name: &str, trace_dir: Option<&Path>) -> Result<PathBuf, ApiError> {
    let Some(dir) = trace_dir else {
        return Err(ApiError::new(
            422,
            "traces_unavailable",
            "this server was started without --trace-dir; trace workloads are not servable",
        ));
    };
    if name.is_empty()
        || name.contains('/')
        || name.contains('\\')
        || name.contains("..")
        || name.starts_with('.')
    {
        return Err(ApiError::new(
            422,
            "bad_trace_name",
            format!("trace name `{name}` must be a plain file name inside the trace directory"),
        ));
    }
    Ok(dir.join(name))
}

/// The canonical workload half of a run cache key.
fn workload_key(app: Option<AppPreset>, trace: Option<&Path>) -> String {
    match (app, trace) {
        (Some(app), _) => format!("app:{}", app.name()),
        (None, Some(path)) => {
            // Canonicalize so `lu.rft` and an equivalent absolute spelling
            // share a cache entry, and include the file's size and mtime
            // so re-recording a trace in place invalidates old entries
            // instead of serving stale bytes. The file exists (the builder
            // opened it during validation), so failures here are transient
            // races — fall back to the literal path / zero stamps.
            let canonical = std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf());
            let (len, mtime_nanos) = std::fs::metadata(&canonical)
                .map(|m| {
                    let mtime = m
                        .modified()
                        .ok()
                        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                        .map_or(0, |d| d.as_nanos());
                    (m.len(), mtime)
                })
                .unwrap_or((0, 0));
            format!(
                "trace:{}|len={len}|mtime={mtime_nanos}",
                canonical.display()
            )
        }
        (None, None) => unreachable!("validated requests always carry a workload"),
    }
}

/// Parses and validates a `POST /run` body.
///
/// # Errors
///
/// A typed [`ApiError`]: `schema` (422) for shape problems,
/// `unknown_workload` / `unknown_policy` (422) for bad names, and
/// `invalid_config` (422) when the composed configuration fails the
/// builder's validation (the reason is the typed `BuildError` rendering).
pub fn parse_run_request(
    root: &Value,
    trace_dir: Option<&Path>,
) -> Result<ValidatedRequest, ApiError> {
    let fields = root
        .as_obj()
        .ok_or_else(|| schema_err("the request body must be a JSON object"))?;

    let mut app: Option<AppPreset> = None;
    let mut trace: Option<PathBuf> = None;
    let mut trace_name: Option<String> = None;
    let mut sram = false;
    let mut policy: Option<RefreshPolicy> = None;
    let mut retention_us: Option<u64> = None;
    let mut retention_profile: Option<RetentionProfile> = None;
    let mut protocol: Option<CoherenceProtocol> = None;
    let mut refs: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut cores: Option<usize> = None;
    let mut mode = SubmitMode::Sync;

    for (key, value) in fields {
        match key.as_str() {
            "app" => app = Some(parse_app(&str_field(value, "app")?)?),
            "trace" => {
                let name = str_field(value, "trace")?;
                trace = Some(resolve_trace(&name, trace_dir)?);
                trace_name = Some(name);
            }
            "sram" => sram = bool_field(value, "sram")?,
            "policy" => policy = Some(parse_policy(&str_field(value, "policy")?)?),
            "retention_us" => retention_us = Some(u64_field(value, "retention_us")?),
            "retention_profile" => {
                retention_profile = Some(parse_retention_profile(&str_field(
                    value,
                    "retention_profile",
                )?)?);
            }
            "protocol" => protocol = Some(parse_protocol(&str_field(value, "protocol")?)?),
            "refs" => refs = Some(u64_field(value, "refs")?),
            "seed" => seed = Some(u64_field(value, "seed")?),
            "cores" => cores = Some(usize_field(value, "cores")?),
            "mode" => mode = mode_field(value)?,
            other => {
                return Err(schema_err(format!(
                    "unknown field \"{other}\" (expected app, trace, sram, policy, \
                     retention_us, retention_profile, protocol, refs, seed, cores, mode)"
                )))
            }
        }
    }

    match (&app, &trace) {
        (None, None) => return Err(schema_err("one of \"app\" or \"trace\" is required")),
        (Some(_), Some(_)) => {
            return Err(schema_err("\"app\" and \"trace\" are mutually exclusive"))
        }
        _ => {}
    }

    let mut builder = if sram {
        Simulation::builder().sram_baseline()
    } else {
        Simulation::builder().edram_recommended()
    };
    if let Some(policy) = policy {
        builder = builder.policy(policy);
    }
    if let Some(us) = retention_us {
        builder = builder.retention_us(us);
    }
    if let Some(profile) = retention_profile {
        builder = builder.retention_profile(profile);
    }
    if let Some(protocol) = protocol {
        builder = builder.protocol(protocol);
    }
    if let Some(refs) = refs {
        builder = builder.refs_per_thread(refs);
    }
    if let Some(seed) = seed {
        builder = builder.seed(seed);
    }
    if let Some(cores) = cores {
        builder = builder.cores(cores);
    }
    if let Some(path) = &trace {
        builder = builder.trace(path);
    }

    // Validate now (including opening the trace) so clients get a typed
    // 422 immediately instead of a failed job later, and so the cache key
    // is derived from the *resolved* configuration.
    let config = builder
        .build_config()
        .map_err(|e| ApiError::new(422, "invalid_config", e.to_string()))?;

    // `config.label()` carries ` dragon` / ` bimodal(25,60)` suffixes for
    // non-default protocol and retention-profile axes, so the key below
    // distinguishes them — and spelling out the defaults (protocol mesi,
    // uniform profile) leaves both the label and the key untouched.
    let cache_key = format!(
        "run|workload={}|config={}|cores={}|banks={}|seed={}|refs={}",
        workload_key(app, trace.as_deref()),
        config.label(),
        config.cores,
        config.l3_banks,
        config.seed,
        config
            .refs_per_thread
            .map_or_else(|| "default".to_owned(), |r| r.to_string()),
    );

    // The request re-expressed from its *raw* fields (the trace name
    // before resolution), so a coordinator can forward it to a backend
    // that resolves against its own --trace-dir.
    let point = PointRequest {
        app: app.map(|a| a.name().to_owned()),
        trace: trace_name,
        sram,
        policy: policy.map(|p| p.label()),
        retention_us,
        retention_profile: retention_profile
            .filter(|p| !p.is_default())
            .map(|p| p.label()),
        protocol: protocol
            .filter(|p| !p.is_default())
            .map(|p| p.label().to_owned()),
        refs,
        seed,
        cores,
    };

    Ok(ValidatedRequest {
        work: JobWork::Run {
            builder: Box::new(builder),
            app,
            point,
        },
        cache_key,
        mode,
    })
}

/// Parses and validates a `POST /sweep` body. Defaults mirror
/// `refrint-cli sweep`: the quick experiment, overridden field by field.
///
/// # Errors
///
/// A typed [`ApiError`] (see [`parse_run_request`]).
pub fn parse_sweep_request(
    root: &Value,
    trace_dir: Option<&Path>,
) -> Result<ValidatedRequest, ApiError> {
    let fields = root
        .as_obj()
        .ok_or_else(|| schema_err("the request body must be a JSON object"))?;

    let mut cfg = ExperimentConfig::quick();
    let mut mode = SubmitMode::Sync;
    let mut anomaly_threshold: Option<f64> = None;
    let mut anomaly_min_slice: Option<u64> = None;

    for (key, value) in fields {
        match key.as_str() {
            "apps" => {
                let items = value
                    .as_arr()
                    .ok_or_else(|| schema_err("\"apps\" must be an array of strings"))?;
                cfg.apps = items
                    .iter()
                    .map(|v| parse_app(&str_field(v, "apps")?))
                    .collect::<Result<_, _>>()?;
            }
            "traces" => {
                let items = value
                    .as_arr()
                    .ok_or_else(|| schema_err("\"traces\" must be an array of strings"))?;
                cfg.traces = items
                    .iter()
                    .map(|v| {
                        let path = resolve_trace(&str_field(v, "traces")?, trace_dir)?;
                        TraceSpec::from_path(&path)
                            .map_err(|e| ApiError::new(422, "invalid_config", e.to_string()))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "policies" => {
                let items = value
                    .as_arr()
                    .ok_or_else(|| schema_err("\"policies\" must be an array of strings"))?;
                cfg.policies = items
                    .iter()
                    .map(|v| parse_policy(&str_field(v, "policies")?))
                    .collect::<Result<_, _>>()?;
            }
            "retentions_us" => {
                let items = value
                    .as_arr()
                    .ok_or_else(|| schema_err("\"retentions_us\" must be an array of integers"))?;
                cfg.retentions_us = items
                    .iter()
                    .map(|v| u64_field(v, "retentions_us"))
                    .collect::<Result<_, _>>()?;
            }
            "protocols" => {
                let items = value
                    .as_arr()
                    .ok_or_else(|| schema_err("\"protocols\" must be an array of strings"))?;
                cfg.protocols = items
                    .iter()
                    .map(|v| parse_protocol(&str_field(v, "protocols")?))
                    .collect::<Result<_, _>>()?;
            }
            "retention_profiles" => {
                let items = value.as_arr().ok_or_else(|| {
                    schema_err("\"retention_profiles\" must be an array of strings")
                })?;
                cfg.retention_profiles = items
                    .iter()
                    .map(|v| parse_retention_profile(&str_field(v, "retention_profiles")?))
                    .collect::<Result<_, _>>()?;
            }
            "refs" => cfg.refs_per_thread = u64_field(value, "refs")?,
            "seed" => cfg.seed = u64_field(value, "seed")?,
            "cores" => cfg.cores = usize_field(value, "cores")?,
            "mode" => mode = mode_field(value)?,
            "anomaly_threshold" => {
                anomaly_threshold = Some(f64_field(value, "anomaly_threshold")?);
            }
            "min_slice" => anomaly_min_slice = Some(u64_field(value, "min_slice")?),
            other => {
                return Err(schema_err(format!(
                    "unknown field \"{other}\" (expected apps, traces, policies, \
                     retentions_us, protocols, retention_profiles, refs, seed, \
                     cores, mode, anomaly_threshold, min_slice)"
                )))
            }
        }
    }

    let defaults = AnomalyTuning::default();
    let anomaly = AnomalyTuning::new(
        anomaly_threshold.unwrap_or(defaults.threshold),
        anomaly_min_slice.map_or(defaults.min_slice, |n| n as usize),
    )
    .map_err(|e| ApiError::new(422, "invalid_tuning", e.to_string()))?;

    if cfg.apps.is_empty() && cfg.traces.is_empty() {
        return Err(schema_err("a sweep needs at least one app or trace"));
    }

    // Validate every derived point up front: building the first
    // configuration catches retention/core errors without running anything.
    for &retention in &cfg.retentions_us {
        for policy in &cfg.policies {
            Simulation::builder()
                .edram_recommended()
                .policy(*policy)
                .retention_us(retention)
                .cores(cfg.cores)
                .build_config()
                .map_err(|e| ApiError::new(422, "invalid_config", e.to_string()))?;
        }
    }
    Simulation::builder()
        .sram_baseline()
        .cores(cfg.cores)
        .build_config()
        .map_err(|e| ApiError::new(422, "invalid_config", e.to_string()))?;

    let apps: Vec<&str> = cfg.apps.iter().map(|a| a.name()).collect();
    let traces: Vec<String> = cfg
        .traces
        .iter()
        .map(|t| workload_key(None, Some(&t.path)))
        .collect();
    let retentions: Vec<String> = cfg.retentions_us.iter().map(u64::to_string).collect();
    let policies: Vec<String> = cfg.policies.iter().map(RefreshPolicy::label).collect();
    let mut cache_key = format!(
        "sweep|apps={}|traces={}|ret={}|pol={}|refs={}|seed={}|cores={}",
        apps.join(","),
        traces.join(","),
        retentions.join(","),
        policies.join(";"),
        cfg.refs_per_thread,
        cfg.seed,
        cfg.cores,
    );
    // Non-default protocol / retention-profile axes get their own key
    // components; the default single-point axes (MESI, uniform) keep the
    // pre-axis key bytes, so existing cache entries stay valid and a
    // client spelling the defaults out still hits them.
    if cfg.protocols != [CoherenceProtocol::Mesi] {
        let labels: Vec<&str> = cfg.protocols.iter().map(|p| p.label()).collect();
        cache_key.push_str(&format!("|proto={}", labels.join(",")));
    }
    if cfg.retention_profiles != [RetentionProfile::Uniform] {
        let labels: Vec<String> = cfg.retention_profiles.iter().map(|p| p.label()).collect();
        cache_key.push_str(&format!("|profiles={}", labels.join(";")));
    }
    // Default-tuned sweeps keep their PR-4 cache keys (and thus their
    // cached bytes); only a non-default tuning gets its own entries.
    if !anomaly.is_default() {
        cache_key.push_str(&format!(
            "|z={}|slice={}",
            refrint_engine::json::num(anomaly.threshold),
            anomaly.min_slice
        ));
    }

    Ok(ValidatedRequest {
        work: JobWork::Sweep {
            config: cfg,
            anomaly,
        },
        cache_key,
        mode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_engine::json::parse;

    fn run(body: &str) -> Result<ValidatedRequest, ApiError> {
        parse_run_request(&parse(body).unwrap(), None)
    }

    #[test]
    fn minimal_run_request_validates() {
        let v = run("{\"app\": \"lu\"}").unwrap();
        assert!(v.cache_key.contains("app:lu"));
        assert!(v.cache_key.contains("eDRAM 50us R.WB(32,32)"));
        assert_eq!(v.mode, SubmitMode::Sync);
    }

    #[test]
    fn equivalent_requests_share_a_cache_key() {
        // Spelling out the defaults must not change the canonical key.
        let a = run("{\"app\": \"lu\", \"refs\": 2000, \"cores\": 4}").unwrap();
        let b =
            run("{\"cores\": 4, \"app\": \"lu\", \"refs\": 2000, \"mode\": \"async\"}").unwrap();
        assert_eq!(a.cache_key, b.cache_key);
        assert_eq!(b.mode, SubmitMode::Async);
        let c = run("{\"app\": \"lu\", \"refs\": 2001, \"cores\": 4}").unwrap();
        assert_ne!(a.cache_key, c.cache_key);
    }

    #[test]
    fn unknown_fields_and_workloads_are_typed_422s() {
        let err = run("{\"app\": \"lu\", \"bogus\": 1}").unwrap_err();
        assert_eq!((err.status, err.kind), (422, "schema"));
        assert!(err.reason.contains("bogus"));
        let err = run("{\"app\": \"quake3\"}").unwrap_err();
        assert_eq!((err.status, err.kind), (422, "unknown_workload"));
        let err = run("{}").unwrap_err();
        assert!(err.reason.contains("required"));
        let err = run("{\"app\": \"lu\", \"trace\": \"x.rft\"}").unwrap_err();
        assert!(err.reason.contains("mutually exclusive") || err.kind == "traces_unavailable");
    }

    #[test]
    fn protocol_and_retention_profile_key_canonically() {
        // Spelled-out defaults hit the same cache entry as omitted fields,
        // in any field order.
        let plain = run("{\"app\": \"lu\"}").unwrap();
        let spelled =
            run("{\"retention_profile\": \"uniform\", \"protocol\": \"mesi\", \"app\": \"lu\"}")
                .unwrap();
        assert_eq!(plain.cache_key, spelled.cache_key);

        // Non-default axes get distinct keys, independent of field order.
        let dragon = run("{\"app\": \"lu\", \"protocol\": \"dragon\"}").unwrap();
        let dragon_reordered = run("{\"protocol\": \"dragon\", \"app\": \"lu\"}").unwrap();
        assert_eq!(dragon.cache_key, dragon_reordered.cache_key);
        assert_ne!(dragon.cache_key, plain.cache_key);
        let bimodal = run("{\"app\": \"lu\", \"retention_profile\": \"bimodal(25,60)\"}").unwrap();
        assert_ne!(bimodal.cache_key, plain.cache_key);
        assert_ne!(bimodal.cache_key, dragon.cache_key);
        let both = run("{\"app\": \"lu\", \"protocol\": \"dragon\", \
             \"retention_profile\": \"bimodal(25,60)\"}")
        .unwrap();
        assert_ne!(both.cache_key, dragon.cache_key);
        assert_ne!(both.cache_key, bimodal.cache_key);
        assert!(both.cache_key.contains("dragon"), "{}", both.cache_key);
        assert!(
            both.cache_key.contains("bimodal(25,60)"),
            "{}",
            both.cache_key
        );

        // The forwardable point request only carries non-default axes.
        match (&spelled.work, &both.work) {
            (JobWork::Run { point: s, .. }, JobWork::Run { point: b, .. }) => {
                assert_eq!(s.protocol, None);
                assert_eq!(s.retention_profile, None);
                assert_eq!(b.protocol.as_deref(), Some("dragon"));
                assert_eq!(b.retention_profile.as_deref(), Some("bimodal(25,60)"));
            }
            other => panic!("wrong work: {other:?}"),
        }
    }

    #[test]
    fn bad_protocols_and_profiles_are_typed_422s() {
        let err = run("{\"app\": \"lu\", \"protocol\": \"moesi\"}").unwrap_err();
        assert_eq!((err.status, err.kind), (422, "unknown_protocol"));
        assert!(err.reason.contains("mesi"), "{}", err.reason);
        let err = run("{\"app\": \"lu\", \"retention_profile\": \"zipf\"}").unwrap_err();
        assert_eq!((err.status, err.kind), (422, "unknown_retention_profile"));
        // SRAM rejects a non-uniform retention profile through the builder.
        let err = run("{\"app\": \"lu\", \"sram\": true, \"retention_profile\": \"normal(10)\"}")
            .unwrap_err();
        assert_eq!((err.status, err.kind), (422, "invalid_config"));
        // The expected-field list names the new fields.
        let err = run("{\"app\": \"lu\", \"bogus\": 1}").unwrap_err();
        assert!(err.reason.contains("retention_profile"), "{}", err.reason);
        assert!(err.reason.contains("protocol"), "{}", err.reason);
    }

    #[test]
    fn sweep_axes_validate_and_key_canonically() {
        let base = "\"apps\": [\"lu\"], \"retentions_us\": [50], \
                    \"policies\": [\"P.all\"], \"refs\": 1000, \"cores\": 2";
        let sweep =
            |extra: &str| parse_sweep_request(&parse(&format!("{{{base}{extra}}}")).unwrap(), None);
        let default_key = sweep("").unwrap().cache_key;
        // Spelling out the default single-point axes keeps the default key.
        let spelled =
            sweep(", \"protocols\": [\"mesi\"], \"retention_profiles\": [\"uniform\"]").unwrap();
        assert_eq!(spelled.cache_key, default_key);
        // Non-default axes are carried into the config and keyed.
        let axes = sweep(
            ", \"protocols\": [\"mesi\", \"dragon\"], \
             \"retention_profiles\": [\"uniform\", \"bimodal(25,60)\"]",
        )
        .unwrap();
        assert_ne!(axes.cache_key, default_key);
        assert!(
            axes.cache_key.contains("proto=mesi,dragon"),
            "{}",
            axes.cache_key
        );
        assert!(
            axes.cache_key.contains("profiles=uniform;bimodal(25,60)"),
            "{}",
            axes.cache_key
        );
        match &axes.work {
            JobWork::Sweep { config, .. } => {
                assert_eq!(config.protocols.len(), 2);
                assert_eq!(config.retention_profiles.len(), 2);
                assert_eq!(config.total_runs(), 2 * (1 + 2));
            }
            other => panic!("wrong work: {other:?}"),
        }
        // Bad labels are typed 422s; the expected-field list is current.
        let err = sweep(", \"protocols\": [\"moesi\"]").unwrap_err();
        assert_eq!((err.status, err.kind), (422, "unknown_protocol"));
        let err = sweep(", \"retention_profiles\": [\"normal(0)\"]").unwrap_err();
        assert_eq!((err.status, err.kind), (422, "unknown_retention_profile"));
        let err = sweep(", \"bogus\": 1").unwrap_err();
        assert!(err.reason.contains("retention_profiles"), "{}", err.reason);
    }

    #[test]
    fn bad_policies_list_valid_labels() {
        let err = run("{\"app\": \"lu\", \"policy\": \"R.sometimes\"}").unwrap_err();
        assert_eq!((err.status, err.kind), (422, "unknown_policy"));
        assert!(err.reason.contains("R.WB(32,32)"), "{}", err.reason);
    }

    #[test]
    fn invalid_configs_surface_the_build_error() {
        let err = run("{\"app\": \"lu\", \"sram\": true, \"retention_us\": 100}").unwrap_err();
        assert_eq!((err.status, err.kind), (422, "invalid_config"));
        assert!(err.reason.contains("SRAM"), "{}", err.reason);
        let err = run("{\"app\": \"lu\", \"cores\": 0}").unwrap_err();
        assert_eq!(err.kind, "invalid_config");
    }

    #[test]
    fn trace_requests_need_a_trace_dir_and_a_plain_name() {
        let err = run("{\"trace\": \"lu.rft\"}").unwrap_err();
        assert_eq!(err.kind, "traces_unavailable");
        let dir = std::env::temp_dir();
        let err = parse_run_request(
            &parse("{\"trace\": \"../etc/passwd\"}").unwrap(),
            Some(&dir),
        )
        .unwrap_err();
        assert_eq!(err.kind, "bad_trace_name");
        let err =
            parse_run_request(&parse("{\"trace\": \"a/b.rft\"}").unwrap(), Some(&dir)).unwrap_err();
        assert_eq!(err.kind, "bad_trace_name");
    }

    #[test]
    fn sweep_requests_validate_and_key_canonically() {
        let body = "{\"apps\": [\"lu\"], \"retentions_us\": [50], \
                    \"policies\": [\"P.all\"], \"refs\": 1000, \"cores\": 2}";
        let v = parse_sweep_request(&parse(body).unwrap(), None).unwrap();
        assert!(v.cache_key.starts_with("sweep|apps=lu|"));
        assert!(v.cache_key.contains("pol=P.all"));
        match &v.work {
            JobWork::Sweep { config, anomaly } => {
                assert_eq!(config.total_runs(), 2);
                assert!(anomaly.is_default());
            }
            other => panic!("wrong work: {other:?}"),
        }

        let err = parse_sweep_request(
            &parse("{\"apps\": [], \"retentions_us\": [50]}").unwrap(),
            None,
        )
        .unwrap_err();
        assert!(err.reason.contains("at least one"));
        let err = parse_sweep_request(
            &parse("{\"apps\": [\"lu\"], \"retentions_us\": [1]}").unwrap(),
            None,
        )
        .unwrap_err();
        assert_eq!(err.kind, "invalid_config");
    }

    #[test]
    fn sweep_anomaly_tuning_is_validated_and_keys_separately() {
        let base = "{\"apps\": [\"lu\"], \"retentions_us\": [50], \
                    \"policies\": [\"P.all\"], \"refs\": 1000, \"cores\": 2";
        let default_key = parse_sweep_request(&parse(&format!("{base}}}")).unwrap(), None)
            .unwrap()
            .cache_key;
        // Spelling out the defaults keeps the default cache key.
        let spelled = parse_sweep_request(
            &parse(&format!(
                "{base}, \"anomaly_threshold\": 8.0, \"min_slice\": 4}}"
            ))
            .unwrap(),
            None,
        )
        .unwrap();
        assert_eq!(spelled.cache_key, default_key);
        // A non-default tuning is carried and keyed separately.
        let tuned = parse_sweep_request(
            &parse(&format!(
                "{base}, \"anomaly_threshold\": 3.5, \"min_slice\": 6}}"
            ))
            .unwrap(),
            None,
        )
        .unwrap();
        assert_ne!(tuned.cache_key, default_key);
        match &tuned.work {
            JobWork::Sweep { anomaly, .. } => {
                assert_eq!((anomaly.threshold, anomaly.min_slice), (3.5, 6));
            }
            other => panic!("wrong work: {other:?}"),
        }
        // Invalid tunables are typed 422s.
        let err = parse_sweep_request(
            &parse(&format!("{base}, \"anomaly_threshold\": -1.0}}")).unwrap(),
            None,
        )
        .unwrap_err();
        assert_eq!((err.status, err.kind), (422, "invalid_tuning"));
        let err = parse_sweep_request(
            &parse(&format!("{base}, \"min_slice\": 0}}")).unwrap(),
            None,
        )
        .unwrap_err();
        assert_eq!((err.status, err.kind), (422, "invalid_tuning"));
    }

    #[test]
    fn error_bodies_are_json_with_kind_and_reason() {
        let err = ApiError::new(422, "schema", "broken \"quote\"");
        let body = String::from_utf8(err.body()).unwrap();
        let parsed = parse(body.trim_end()).unwrap();
        let inner = parsed.get("error").unwrap();
        assert_eq!(inner.get("kind").and_then(Value::as_str), Some("schema"));
        assert!(inner
            .get("reason")
            .and_then(Value::as_str)
            .unwrap()
            .contains("quote"));
    }
}
