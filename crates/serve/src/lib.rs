//! `refrint-serve`: a dependency-free HTTP simulation service.
//!
//! The rest of the workspace runs one simulation per process invocation;
//! this crate keeps a simulator resident and serves many clients from it,
//! which is where the PR 3 throughput work starts to pay off at scale. It
//! is built entirely on `std` — `TcpListener`, `sync_channel`, threads —
//! matching the workspace's offline, no-external-dependency constraint.
//!
//! # API
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /run` | one simulation (builder-style params); body is byte-identical to `refrint-cli run --format json` |
//! | `POST /sweep` | an experiment sweep; body is byte-identical to `refrint-cli sweep --format json` |
//! | `GET /jobs/<id>` | job status document |
//! | `GET /jobs/<id>/result` | the job's result bytes (202 while pending) |
//! | `GET /jobs/<id>/trace` | OTLP-shaped span tree (fleet-stitched on a coordinator) |
//! | `GET /jobs/<id>/progress` | chunked ndjson live progress (points done, refs/sec, ETA) |
//! | `GET /healthz` | liveness + uptime |
//! | `GET /metrics` | Prometheus text counters |
//! | `GET /metrics/history?window=S` | counter deltas and rates over the last `S` seconds |
//! | `GET /backends` | coordinator mode: the backend pool and its health |
//! | `POST /backends` | coordinator mode: register a backend (`{"addr":"host:port"}`) |
//! | `POST /shutdown` | graceful shutdown (also triggered by SIGTERM) |
//!
//! # Architecture
//!
//! ```text
//!  accept loop ──► connection threads ──► bounded MPSC job queue
//!      │                 │ cache hit? ◄── result cache (canonical key)
//!      ▼                 ▼                        ▲
//!  shutdown flag    sync waiters ◄── condvar ── worker pool (simulates)
//! ```
//!
//! Every request is validated before it is queued (typed 4xx errors, never
//! a dropped connection), the queue is bounded (`503 queue_full` beyond
//! capacity), and results are cached under a canonical key derived from
//! the validated configuration — an identical request is answered with the
//! very same bytes without simulating again.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod client;
pub mod coordinator;
pub mod disk_cache;
pub mod http;
pub mod jobs;
pub mod metrics;

/// The shared JSON string escaper, re-exported for the `serve-client`
/// binary.
pub use refrint_engine::json::escape as json_escape;

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use refrint_engine::json::{escape, num, parse, Value};
use refrint_obs::log::{Level, LogFormat, Logger};
use refrint_obs::otlp;
use refrint_obs::span::{RequestTrace, StageSpan, TraceContext};
use refrint_obs::timeseries::TimeSeriesRing;

use crate::api::{ApiError, SubmitMode, ValidatedRequest};
use crate::client::Timeouts;
use crate::coordinator::{Coordinator, CoordinatorOptions, DispatchEnv};
use crate::disk_cache::DiskCache;
use crate::http::{elapsed_nanos, HttpError, Request, Response};
use crate::jobs::{Job, JobOutput, JobProgress, JobStatus, JobWork, ResultCache, SharedJobs};
use crate::metrics::Metrics;

/// Points whose backend span trees are fetched and stitched into a
/// coordinator's `/jobs/<id>/trace` (bounded like the dispatch-span cap,
/// so a huge sweep cannot balloon its trace document).
const MAX_STITCHED_POINTS: usize = 64;

/// SIGTERM flag handling. On unix the handler is installed via the libc
/// `signal` symbol (already linked by `std`); elsewhere the flag simply
/// never fires and `POST /shutdown` is the only trigger.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
        }
    }

    pub fn requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigterm {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

/// Installs the SIGTERM handler so a terminated server drains its queue
/// and exits cleanly. A no-op on non-unix platforms. Idempotent.
pub fn install_sigterm_handler() {
    sigterm::install();
}

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Simulation worker threads (the pool size).
    pub workers: usize,
    /// Bound of the job queue; submissions beyond it get `503 queue_full`.
    pub queue_capacity: usize,
    /// Results retained in the LRU cache.
    pub cache_capacity: usize,
    /// Hard limit on request body size (bytes).
    pub max_body_bytes: usize,
    /// Socket read timeout (slowloris guard).
    pub read_timeout: Duration,
    /// How long a synchronous request waits for its job before returning
    /// `503 timeout` (the job keeps running; poll `/jobs/<id>`).
    pub request_deadline: Duration,
    /// Concurrent connections beyond this are answered `503` immediately.
    pub max_connections: usize,
    /// Completed jobs retained for `/jobs/<id>` polling.
    pub retained_jobs: usize,
    /// Directory trace workloads are served from (`"trace": "name.rft"`).
    pub trace_dir: Option<PathBuf>,
    /// Upper bounds (in microseconds) of the `/metrics` latency histogram
    /// buckets, shared by the request and per-stage families.
    pub latency_bounds_micros: Vec<u64>,
    /// Structured-log line format (stderr).
    pub log_format: LogFormat,
    /// Minimum level logged. The library default is [`Level::Error`]
    /// (quiet); the CLI raises it from `REFRINT_LOG`.
    pub log_level: Level,
    /// Coordinator mode: instead of simulating locally, split jobs into
    /// point-level `POST /run` requests and dispatch them to this pool of
    /// backend servers (see [`coordinator`]).
    pub coordinator: Option<CoordinatorOptions>,
    /// Directory of the persistent result cache; `None` disables it.
    pub disk_cache_dir: Option<PathBuf>,
    /// Bodies retained in the persistent result cache (LRU).
    pub disk_cache_capacity: usize,
    /// How often the background tick snapshots the counters into the
    /// `/metrics/history` time-series ring (and, on a coordinator, scrapes
    /// each backend's `/metrics`).
    pub metrics_interval: Duration,
    /// Snapshots retained per time-series ring.
    pub history_windows: usize,
    /// How often `GET /jobs/<id>/progress` emits a progress line while the
    /// job is still running.
    pub progress_interval: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism().map_or(2, usize::from);
        ServerOptions {
            workers: parallelism.clamp(1, 4),
            queue_capacity: 64,
            cache_capacity: 128,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(120),
            max_connections: 64,
            retained_jobs: 256,
            trace_dir: None,
            latency_bounds_micros: metrics::LATENCY_BOUNDS_MICROS.to_vec(),
            log_format: LogFormat::Text,
            log_level: Level::Error,
            coordinator: None,
            disk_cache_dir: None,
            disk_cache_capacity: 512,
            metrics_interval: Duration::from_secs(1),
            history_windows: 512,
            progress_interval: Duration::from_millis(200),
        }
    }
}

/// The retained time-series: the node's own counter ring plus, on a
/// coordinator, one ring per scraped backend.
#[derive(Debug)]
struct HistoryState {
    local: TimeSeriesRing,
    backends: BTreeMap<String, TimeSeriesRing>,
}

/// A submitted job's work item, enqueue instant and inbound trace
/// context, held in the work map until a worker claims it.
type PendingWork = (JobWork, Instant, Option<TraceContext>);

/// Shared state of a running server.
#[derive(Debug)]
struct ServerState {
    options: ServerOptions,
    jobs: SharedJobs,
    work: Mutex<HashMap<String, PendingWork>>,
    cache: Mutex<ResultCache>,
    metrics: Metrics,
    logger: Logger,
    queue: Mutex<Option<SyncSender<String>>>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    next_job: AtomicU64,
    coordinator: Option<Coordinator>,
    disk_cache: Option<DiskCache>,
    /// The time-series epoch: every ring timestamp is milliseconds since
    /// this instant.
    epoch: Instant,
    history: Mutex<HistoryState>,
}

impl ServerState {
    fn next_job_id(&self) -> String {
        format!("j{:08x}", self.next_job.fetch_add(1, Ordering::Relaxed))
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || sigterm::requested()
    }
}

/// Decrements the active-connection count when a handler exits, even by
/// panic.
struct ConnectionGuard(Arc<ServerState>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The simulation service: a bound listener plus its worker pool.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts the worker pool (the accept loop starts
    /// with [`Server::run`] or [`Server::spawn`]). Pass port 0 for an
    /// ephemeral port, then read it back with [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Any socket error from binding.
    pub fn bind(addr: impl ToSocketAddrs, options: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let (tx, rx) = std::sync::mpsc::sync_channel::<String>(options.queue_capacity.max(1));
        let worker_count = options.workers.max(1);
        // Metrics and logger come up before the disk cache so a corrupt
        // index is observable: warned about and counted, never silent.
        let metrics = Metrics::with_latency_bounds(&options.latency_bounds_micros);
        let logger = Logger::to_stderr(options.log_level, options.log_format);
        let disk_cache = options
            .disk_cache_dir
            .as_deref()
            .map(|dir| {
                DiskCache::open_observed(
                    dir,
                    options.disk_cache_capacity,
                    &logger,
                    Some(&metrics.disk_cache_resets),
                )
            })
            .transpose()?;
        let coordinator = options
            .coordinator
            .clone()
            .map(|opts| Coordinator::new(opts, options.log_level, options.log_format))
            .transpose()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.reason))?;
        let history = HistoryState {
            local: TimeSeriesRing::new(metrics.history_names(), options.history_windows),
            backends: BTreeMap::new(),
        };
        let state = Arc::new(ServerState {
            jobs: SharedJobs::new(options.retained_jobs),
            work: Mutex::new(HashMap::new()),
            cache: Mutex::new(ResultCache::new(options.cache_capacity)),
            metrics,
            logger,
            queue: Mutex::new(Some(tx)),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            next_job: AtomicU64::new(1),
            coordinator,
            disk_cache,
            options,
            epoch: Instant::now(),
            history: Mutex::new(history),
        });
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..worker_count)
            .map(|i| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("refrint-worker-{i}"))
                    .spawn(move || worker_loop(&state, &rx))
                    .expect("spawning a worker thread succeeds")
            })
            .collect();
        {
            // The tick thread is detached: it holds only an Arc and exits
            // on its own shortly after the shutdown flag is raised.
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("refrint-metrics-tick".into())
                .spawn(move || history_tick_loop(&state))
                .expect("spawning the metrics tick thread succeeds");
        }
        Ok(Server {
            listener,
            state,
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Any socket error from reading the local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `POST /shutdown` or SIGTERM, then drains: queued jobs
    /// finish, workers join, in-flight connections get a grace period.
    ///
    /// # Errors
    ///
    /// Any socket error from the accept loop.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            state,
            workers,
        } = self;
        listener.set_nonblocking(true)?;
        while !state.shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let previous = state.active_connections.fetch_add(1, Ordering::SeqCst);
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || {
                        let guard = ConnectionGuard(Arc::clone(&state));
                        handle_connection(
                            &state,
                            stream,
                            previous >= state.options.max_connections,
                        );
                        drop(guard);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Graceful drain. Close the listener first so clients connecting
        // mid-drain are refused immediately instead of handshaking into a
        // backlog nobody will ever read. Then close the queue (workers
        // finish what is queued and exit), join the pool, and give
        // in-flight connections a moment to write their responses.
        state.logger.info("drain_start", &[]);
        drop(listener);
        state.queue.lock().expect("queue lock").take();
        for worker in workers {
            let _ = worker.join();
        }
        let grace = std::time::Instant::now();
        while state.active_connections.load(Ordering::SeqCst) > 0
            && grace.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        state.logger.info("drain_done", &[]);
        Ok(())
    }

    /// Runs the server on a background thread; the returned handle stops
    /// it. Intended for tests and embedding.
    ///
    /// # Errors
    ///
    /// Any socket error from reading the local address.
    pub fn spawn(self) -> io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let thread = std::thread::Builder::new()
            .name("refrint-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawning the accept thread succeeds");
        Ok(RunningServer {
            addr,
            state,
            thread: Some(thread),
        })
    }
}

/// Handle to a [`Server`] running on a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl RunningServer {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the drain to complete.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.state.request_shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn worker_loop(state: &Arc<ServerState>, rx: &Arc<Mutex<Receiver<String>>>) {
    loop {
        let id = {
            let rx = rx.lock().expect("worker queue lock");
            match rx.recv() {
                Ok(id) => id,
                Err(_) => return, // queue closed: drain complete
            }
        };
        state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        state
            .jobs
            .table
            .lock()
            .expect("job table lock")
            .set_status(&id, JobStatus::Running);
        let entry = state.work.lock().expect("work map lock").remove(&id);
        let Some((work, enqueued_at, trace, cache_key)) = entry.map(|(w, at, t)| {
            let key = state
                .jobs
                .table
                .lock()
                .expect("job table lock")
                .get(&id)
                .map(|j| j.cache_key.clone())
                .unwrap_or_default();
            (w, at, t, key)
        }) else {
            continue;
        };
        let queue_nanos = elapsed_nanos(enqueued_at);
        state.logger.debug(
            "job_claimed",
            &[
                ("job", id.clone()),
                ("kind", work.kind().to_owned()),
                ("queue_ms", format!("{:.3}", queue_nanos as f64 / 1e6)),
            ],
        );
        state.metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
        let execute_started = Instant::now();
        let mut output = match &state.coordinator {
            Some(coordinator) => {
                let total = match &work {
                    JobWork::Run { .. } => 1,
                    JobWork::Sweep { config, .. } => config.total_runs() as u64,
                };
                let progress = Arc::new(JobProgress::new(total));
                state
                    .jobs
                    .table
                    .lock()
                    .expect("job table lock")
                    .set_progress(&id, Arc::clone(&progress));
                coordinator.execute(
                    &work,
                    &DispatchEnv {
                        trace_dir: state.options.trace_dir.as_deref(),
                        memory_cache: &state.cache,
                        disk_cache: state.disk_cache.as_ref(),
                        metrics: &state.metrics,
                        trace: trace.as_ref(),
                        progress: Some(&progress),
                    },
                )
            }
            None => jobs::execute(&work),
        };
        output.queue_nanos = queue_nanos;
        output.execute_nanos = elapsed_nanos(execute_started);
        state.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
        let ok = output.status == 200;
        state.metrics.record_job(
            ok,
            output.refs,
            output.sim_seconds,
            &output.subsystem_cycles,
        );
        // The queue_wait/execute stage histograms are fed here, from the
        // worker, so sync and async submissions are counted exactly once.
        state
            .metrics
            .record_stage_micros("queue_wait", queue_nanos / 1_000);
        state
            .metrics
            .record_stage_micros("execute", output.execute_nanos / 1_000);
        state.logger.info(
            "job_done",
            &[
                ("job", id.clone()),
                ("kind", work.kind().to_owned()),
                ("status", output.status.to_string()),
                (
                    "execute_ms",
                    format!("{:.3}", output.execute_nanos as f64 / 1e6),
                ),
            ],
        );
        if ok && !cache_key.is_empty() {
            state
                .cache
                .lock()
                .expect("cache lock")
                .insert(cache_key.clone(), Arc::clone(&output.body));
            if let Some(disk) = &state.disk_cache {
                if let Err(e) = disk.put(&cache_key, &output.body) {
                    state
                        .logger
                        .warn("disk_cache_put_failed", &[("error", e.to_string())]);
                }
            }
        }
        state.jobs.finish(&id, output);
    }
}

/// Feeds the local time-series ring — and, on a coordinator, one ring per
/// scraped backend — every `metrics_interval` until shutdown. The push is
/// allocation-free in steady state: the snapshot vector and every ring
/// window are reused in place.
fn history_tick_loop(state: &Arc<ServerState>) {
    let mut values = Vec::new();
    loop {
        let interval = state.options.metrics_interval;
        let slept = Instant::now();
        while slept.elapsed() < interval {
            if state.shutting_down() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20).min(interval));
        }
        let t_millis = u64::try_from(state.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
        state.metrics.history_values(&mut values);
        {
            let mut history = state.history.lock().expect("history lock");
            history.local.push(t_millis, &values);
        }
        if let Some(coordinator) = &state.coordinator {
            scrape_backends(state, coordinator, t_millis);
        }
    }
}

/// The backend counters a coordinator retains per-node series for, as
/// `(Prometheus name, series name)` pairs.
const BACKEND_SERIES: [(&str, &str); 5] = [
    ("refrint_http_requests_total", "http_requests"),
    ("refrint_jobs_completed_total", "jobs_completed"),
    ("refrint_refs_simulated_total", "refs_simulated"),
    ("refrint_cache_hits_total", "cache_hits"),
    ("refrint_cache_misses_total", "cache_misses"),
];

/// Scrapes each registered backend's `/metrics` with short timeouts and
/// pushes the extracted counters into that backend's ring. Best-effort: an
/// unreachable backend simply contributes no window this tick.
fn scrape_backends(state: &Arc<ServerState>, coordinator: &Coordinator, t_millis: u64) {
    for addr in coordinator.backend_addrs() {
        let answer = client::request_with_timeouts(
            addr,
            "GET",
            "/metrics",
            None,
            &[],
            Timeouts {
                connect: Duration::from_millis(500),
                read: Duration::from_secs(2),
                write: Duration::from_millis(500),
            },
        );
        let Ok(response) = answer else { continue };
        if response.status != 200 {
            continue;
        }
        let values = parse_scrape(&response.body_str());
        let mut history = state.history.lock().expect("history lock");
        history
            .backends
            .entry(addr.to_string())
            .or_insert_with(|| {
                TimeSeriesRing::new(
                    BACKEND_SERIES
                        .iter()
                        .map(|(_, s)| (*s).to_owned())
                        .collect(),
                    state.options.history_windows,
                )
            })
            .push(t_millis, &values);
    }
}

/// Extracts the [`BACKEND_SERIES`] counters from a Prometheus text body,
/// index-aligned with the series names.
fn parse_scrape(body: &str) -> Vec<u64> {
    let mut values = vec![0u64; BACKEND_SERIES.len()];
    for line in body.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
            continue;
        };
        if let Some(i) = BACKEND_SERIES.iter().position(|(p, _)| *p == name) {
            values[i] = value.parse::<u64>().unwrap_or(0);
        }
    }
    values
}

/// Per-request tracing state threaded through routing: the trace context
/// (inbound `traceparent` or minted from the canonical cache key), the
/// lifecycle stages recorded so far on a contiguous nanosecond timeline,
/// and the job the request resolved to, if any.
#[derive(Debug, Default)]
struct RequestCtx {
    trace: Option<TraceContext>,
    stages: Vec<StageSpan>,
    cursor: u64,
    job_id: Option<String>,
    cache: Option<&'static str>,
}

impl RequestCtx {
    /// Appends a stage of `dur_nanos` at the current cursor.
    fn stage(&mut self, name: &'static str, dur_nanos: u64) {
        self.stages.push(StageSpan {
            name,
            start_nanos: self.cursor,
            dur_nanos,
        });
        self.cursor += dur_nanos;
    }
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream, over_capacity: bool) {
    let started = std::time::Instant::now();
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; force blocking + timeouts.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(state.options.read_timeout));
    let _ = stream.set_write_timeout(Some(state.options.read_timeout));
    state.metrics.http_requests.fetch_add(1, Ordering::Relaxed);

    let mut ctx = RequestCtx::default();
    let mut method = "-".to_owned();
    let mut path = "-".to_owned();
    let response = if over_capacity {
        ApiError::new(
            503,
            "over_capacity",
            format!(
                "more than {} concurrent connections; retry shortly",
                state.options.max_connections
            ),
        )
        .into()
    } else {
        match http::read_request(&mut stream, state.options.max_body_bytes) {
            Ok(request) => {
                method.clone_from(&request.method);
                path.clone_from(&request.path);
                ctx.stage("parse", request.head_nanos);
                ctx.stage("read_body", request.body_nanos);
                ctx.trace = request
                    .header("traceparent")
                    .and_then(TraceContext::parse_traceparent);
                if request.method == "GET" {
                    if let Some(id) = request
                        .path
                        .strip_prefix("/jobs/")
                        .and_then(|rest| rest.strip_suffix("/progress"))
                    {
                        // A streaming response, written chunk by chunk as
                        // the job advances — it cannot go through the
                        // buffered write below.
                        stream_progress(state, &mut stream, id, started);
                        return;
                    }
                }
                route(state, &request, &mut ctx)
            }
            Err(e) => error_response(&e),
        }
    };
    if response.status >= 400 {
        state.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
    }
    let write_started = Instant::now();
    response.write(&mut stream);
    ctx.stage("write", elapsed_nanos(write_started));
    // Latency includes routing and (for sync submissions) the simulation
    // itself — the duration a client actually experienced.
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    state.metrics.record_request_micros(micros);
    for stage in &ctx.stages {
        state
            .metrics
            .record_stage_micros(stage.name, stage.dur_nanos / 1_000);
    }
    let total_nanos = elapsed_nanos(started);
    let trace_id = ctx
        .trace
        .as_ref()
        .map_or_else(|| "-".to_owned(), |t| t.trace_id.clone());
    if let (Some(context), Some(job_id)) = (ctx.trace, ctx.job_id.as_ref()) {
        // Attached after the response is written so the trace includes the
        // `write` stage; `/jobs/<id>/trace` answers 202 until then.
        state.jobs.set_trace(
            job_id,
            RequestTrace {
                context,
                stages: ctx.stages,
                total_nanos,
            },
        );
    }
    if state.logger.enabled(Level::Info) {
        state.logger.info(
            "request",
            &[
                ("method", method),
                ("path", path),
                ("status", response.status.to_string()),
                ("duration_ms", format!("{:.3}", total_nanos as f64 / 1e6)),
                ("trace_id", trace_id),
                ("job", ctx.job_id.unwrap_or_else(|| "-".to_owned())),
                ("cache", ctx.cache.unwrap_or("-").to_owned()),
            ],
        );
    }
    // Drain any unread request bytes before closing: dropping a socket
    // with data still queued (e.g. an over-limit body rejected before it
    // was read) can RST the connection and destroy the response we just
    // wrote before the peer reads it. Signal end-of-response, then
    // discard briefly and boundedly.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 8 * 1024];
    let mut drained = 0usize;
    while let Ok(n) = std::io::Read::read(&mut stream, &mut sink) {
        if n == 0 {
            break;
        }
        drained += n;
        if drained > 4 * 1024 * 1024 {
            break;
        }
    }
}

fn error_response(e: &HttpError) -> Response {
    Response::json(
        e.status(),
        ApiError::new(e.status(), e.kind(), e.reason()).body(),
    )
}

impl From<ApiError> for Response {
    fn from(e: ApiError) -> Self {
        Response::json(e.status, e.body())
    }
}

fn route(state: &Arc<ServerState>, request: &Request, ctx: &mut RequestCtx) -> Response {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match path {
        "/healthz" => match method {
            "GET" => Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"uptime_seconds\":{}}}\n",
                    num(state.metrics.uptime_seconds())
                ),
            ),
            _ => method_not_allowed("GET"),
        },
        "/metrics" => match method {
            "GET" => {
                let mut doc = state.metrics.render();
                if let Some(coordinator) = &state.coordinator {
                    doc.push_str(&coordinator.render_metrics());
                }
                Response::text(200, doc)
            }
            _ => method_not_allowed("GET"),
        },
        "/backends" => backends_endpoint(state, method, &request.body),
        "/shutdown" => match method {
            "POST" => {
                state.request_shutdown();
                Response::json(200, "{\"status\":\"shutting_down\"}\n".to_owned())
            }
            _ => method_not_allowed("POST"),
        },
        "/run" | "/sweep" => match method {
            "POST" => submit_endpoint(state, path, &request.body, ctx),
            _ => method_not_allowed("POST"),
        },
        _ if path.starts_with("/metrics/") => match method {
            "GET" => metrics_history_endpoint(state, path),
            _ => method_not_allowed("GET"),
        },
        _ if path.starts_with("/jobs/") => match method {
            "GET" => jobs_endpoint(state, path),
            _ => method_not_allowed("GET"),
        },
        other => ApiError::new(404, "not_found", format!("no such endpoint `{other}`")).into(),
    }
}

fn backends_endpoint(state: &Arc<ServerState>, method: &str, body: &[u8]) -> Response {
    let Some(coordinator) = &state.coordinator else {
        return ApiError::new(
            404,
            "not_found",
            "this server is not a coordinator; start it with --coordinator",
        )
        .into();
    };
    match method {
        "GET" => Response::json(200, coordinator.backends_doc()),
        "POST" => {
            let parsed = std::str::from_utf8(body)
                .ok()
                .and_then(|text| refrint_engine::json::parse(text).ok());
            let Some(addr) = parsed
                .as_ref()
                .and_then(|root| root.get("addr"))
                .and_then(|v| v.as_str().map(str::to_owned))
            else {
                return ApiError::new(
                    400,
                    "bad_json",
                    "expected a JSON body like {\"addr\":\"host:port\"}",
                )
                .into();
            };
            match coordinator.register(&addr, true) {
                Ok(resolved) => Response::json(
                    200,
                    format!("{{\"status\":\"registered\",\"addr\":\"{resolved}\"}}\n"),
                ),
                Err(e) => e.into(),
            }
        }
        _ => method_not_allowed("GET, POST"),
    }
}

fn method_not_allowed(allowed: &str) -> Response {
    Response::from(ApiError::new(
        405,
        "method_not_allowed",
        format!("this endpoint only accepts {allowed}"),
    ))
    .with_header("Allow", allowed)
}

fn submit_endpoint(
    state: &Arc<ServerState>,
    path: &str,
    body: &[u8],
    ctx: &mut RequestCtx,
) -> Response {
    let validate_started = Instant::now();
    let parsed = (|| {
        let Ok(text) = std::str::from_utf8(body) else {
            return Err(ApiError::new(400, "bad_json", "request body is not UTF-8"));
        };
        let root = refrint_engine::json::parse(text)
            .map_err(|e| ApiError::new(400, "bad_json", e.to_string()))?;
        let trace_dir = state.options.trace_dir.as_deref();
        match path {
            "/run" => api::parse_run_request(&root, trace_dir),
            _ => api::parse_sweep_request(&root, trace_dir),
        }
    })();
    ctx.stage("validate", elapsed_nanos(validate_started));
    match parsed {
        Ok(request) => submit(state, request, ctx),
        Err(e) => e.into(),
    }
}

fn submit(state: &Arc<ServerState>, request: ValidatedRequest, ctx: &mut RequestCtx) -> Response {
    let ValidatedRequest {
        work,
        cache_key,
        mode,
    } = request;

    // A request that arrived without (a valid) `traceparent` gets a trace
    // id minted deterministically from the canonical cache key — which
    // carries the seed — so identical requests are identically traceable.
    if ctx.trace.is_none() {
        ctx.trace = Some(TraceContext::mint(&cache_key));
    }

    // Cache first: identical requests are answered with the same bytes.
    // Memory, then disk — a disk hit is promoted into the memory cache, so
    // a restarted server with the same `--cache-dir` answers warm.
    let lookup_started = Instant::now();
    let mut cached = state
        .cache
        .lock()
        .expect("cache lock")
        .get(&cache_key)
        .clone();
    if cached.is_none() {
        if let Some(disk) = &state.disk_cache {
            if let Some(bytes) = disk.get(&cache_key) {
                state
                    .metrics
                    .disk_cache_hits
                    .fetch_add(1, Ordering::Relaxed);
                let body = Arc::new(bytes);
                state
                    .cache
                    .lock()
                    .expect("cache lock")
                    .insert(cache_key.clone(), Arc::clone(&body));
                cached = Some(body);
            } else {
                state
                    .metrics
                    .disk_cache_misses
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    ctx.stage("cache_lookup", elapsed_nanos(lookup_started));
    if let Some(body) = cached {
        state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        ctx.cache = Some("hit");
        // Register an already-finished job for hits in both modes, so
        // `/jobs/<id>` polling and `/jobs/<id>/trace` work uniformly
        // across hits and misses. Not counted as a submission: no worker
        // ever ran.
        let id = state.next_job_id();
        let job = Job {
            id: id.clone(),
            kind: work.kind(),
            cache_key,
            status: JobStatus::Done,
            output: Some(JobOutput::from_bytes(200, body.clone())),
            cached: true,
            trace: None,
            progress: None,
        };
        let doc = job.status_doc();
        state.jobs.table.lock().expect("job table lock").insert(job);
        ctx.job_id = Some(id.clone());
        return match mode {
            SubmitMode::Sync => Response::json(200, body.as_ref().clone())
                .with_header("X-Refrint-Cache", "hit")
                .with_header("X-Refrint-Job", id),
            SubmitMode::Async => Response::json(202, doc)
                .with_header("X-Refrint-Cache", "hit")
                .with_header("X-Refrint-Job", id),
        };
    }
    state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    ctx.cache = Some("miss");

    if state.shutting_down() {
        return ApiError::new(
            503,
            "shutting_down",
            "the server is draining; retry elsewhere",
        )
        .into();
    }

    // Register the job, then enqueue its id through the bounded queue.
    let id = state.next_job_id();
    let job = Job {
        id: id.clone(),
        kind: work.kind(),
        cache_key,
        status: JobStatus::Queued,
        output: None,
        cached: false,
        trace: None,
        progress: None,
    };
    let doc = job.status_doc();
    state.jobs.table.lock().expect("job table lock").insert(job);
    state
        .work
        .lock()
        .expect("work map lock")
        .insert(id.clone(), (work, Instant::now(), ctx.trace.clone()));

    let sender = state.queue.lock().expect("queue lock").clone();
    // The gauge goes up before the send so a worker that claims the job
    // immediately never decrements past zero.
    state.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
    let enqueued = match sender {
        Some(tx) => tx.try_send(id.clone()),
        None => Err(TrySendError::Disconnected(id.clone())),
    };
    if let Err(e) = enqueued {
        state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        state.jobs.table.lock().expect("job table lock").remove(&id);
        state.work.lock().expect("work map lock").remove(&id);
        return match e {
            TrySendError::Full(_) => ApiError::new(
                503,
                "queue_full",
                format!(
                    "the job queue is at its {}-job capacity; retry shortly",
                    state.options.queue_capacity
                ),
            )
            .into(),
            TrySendError::Disconnected(_) => ApiError::new(
                503,
                "shutting_down",
                "the server is draining; retry elsewhere",
            )
            .into(),
        };
    }
    state.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    ctx.job_id = Some(id.clone());

    match mode {
        SubmitMode::Async => Response::json(202, doc)
            .with_header("X-Refrint-Cache", "miss")
            .with_header("X-Refrint-Job", id),
        SubmitMode::Sync => match state.jobs.wait_for(&id, state.options.request_deadline) {
            Some(output) => Response::json(output.status, output.body.as_ref().clone())
                .with_header("X-Refrint-Cache", "miss")
                .with_header("X-Refrint-Job", id),
            None => ApiError::new(
                503,
                "timeout",
                format!(
                    "job {id} did not finish within {}s; poll GET /jobs/{id}",
                    state.options.request_deadline.as_secs()
                ),
            )
            .into(),
        },
    }
}

enum JobView {
    Status,
    Result,
    Trace,
}

fn jobs_endpoint(state: &Arc<ServerState>, path: &str) -> Response {
    let rest = &path["/jobs/".len()..];
    let (id, view) = if let Some(id) = rest.strip_suffix("/result") {
        (id, JobView::Result)
    } else if let Some(id) = rest.strip_suffix("/trace") {
        (id, JobView::Trace)
    } else {
        (rest, JobView::Status)
    };
    let job = {
        let table = state.jobs.table.lock().expect("job table lock");
        let Some(job) = table.get(id) else {
            return ApiError::new(404, "not_found", format!("no job `{}`", escape(id))).into();
        };
        job.clone()
    };
    match view {
        JobView::Result => match &job.output {
            Some(output) => Response::json(output.status, output.body.as_ref().clone())
                .with_header("X-Refrint-Cache", if job.cached { "hit" } else { "miss" }),
            None => Response::json(202, job.status_doc()),
        },
        JobView::Trace => trace_response(&job),
        JobView::Status => Response::json(200, job.status_doc()),
    }
}

/// Builds the OTLP-shaped `/jobs/<id>/trace` document for a finished,
/// trace-carrying job. 202 (the status document) while the trace has not
/// been attached yet — the connection handler attaches it only after the
/// response bytes are on the wire.
fn trace_response(job: &Job) -> Response {
    let Some(trace) = &job.trace else {
        return Response::json(202, job.status_doc());
    };
    let mut trace = trace.clone();
    // The worker's queue-wait/execute timings live in the job output, not
    // in the connection handler's stage record (for async submissions they
    // happen long after the response was written). Splice them in here.
    if !job.cached {
        if let Some(output) = &job.output {
            for (name, dur) in [
                ("queue_wait", output.queue_nanos),
                ("execute", output.execute_nanos),
            ] {
                if !trace.has_stage(name) {
                    let start_nanos = trace.last_stage_end();
                    trace.stages.push(StageSpan {
                        name,
                        start_nanos,
                        dur_nanos: dur,
                    });
                }
            }
        }
    }
    let extra = [
        ("refrint.job".to_owned(), job.id.clone()),
        ("refrint.job_kind".to_owned(), job.kind.to_owned()),
        ("refrint.job_cached".to_owned(), job.cached.to_string()),
        (
            "refrint.job_status".to_owned(),
            job.status.label().to_owned(),
        ),
    ];
    let output = job.output.as_ref().filter(|_| !job.cached);
    let sim = output.and_then(|o| {
        o.obs
            .as_ref()
            .map(|obs| (obs.as_ref(), o.config_label.as_str(), o.workload.as_str()))
    });
    let dispatch = job
        .output
        .as_ref()
        .map_or(&[] as &[_], |o| o.dispatch.as_slice());
    let points = job
        .output
        .as_ref()
        .map_or(&[] as &[_], |o| o.points.as_slice());
    let mut body = if points.is_empty() {
        otlp::render_request_with_dispatch(&trace, &extra, sim, dispatch)
    } else {
        // A fanned-out job: fetch each point's span tree from the backend
        // that ran it and stitch the subtrees under deterministic per-point
        // anchor spans.
        let subtrees = collect_subtrees(points);
        otlp::render_fleet_request(&trace, &extra, dispatch, &subtrees)
    };
    body.push('\n');
    Response::json(200, body)
}

/// Fetches each dispatched point's backend span tree, bounded and
/// best-effort: a cache-served point or an unreachable backend is stitched
/// as an anchor-only span.
fn collect_subtrees(points: &[jobs::PointOutcome]) -> Vec<otlp::BackendSubtree> {
    points
        .iter()
        .take(MAX_STITCHED_POINTS)
        .map(|p| {
            let document = p
                .backend_job
                .as_deref()
                .and_then(|job| fetch_backend_trace(&p.node, job));
            otlp::BackendSubtree {
                point_index: p.index,
                label: p.label.clone(),
                node: p.node.clone(),
                backend_job: p.backend_job.clone(),
                start_nanos: p.start_nanos,
                dur_nanos: p.dur_nanos,
                document,
            }
        })
        .collect()
}

/// Fetches one backend's `GET /jobs/<id>/trace` document. The backend
/// attaches a trace only after its response bytes are on the wire, so a
/// brief 202 right after dispatch is expected — retried a few times.
fn fetch_backend_trace(node: &str, job: &str) -> Option<Value> {
    let addr: SocketAddr = node.parse().ok()?;
    let path = format!("/jobs/{job}/trace");
    for _ in 0..10 {
        let answer = client::request_with_timeouts(
            addr,
            "GET",
            &path,
            None,
            &[],
            Timeouts {
                connect: Duration::from_millis(500),
                read: Duration::from_secs(2),
                write: Duration::from_millis(500),
            },
        );
        match answer {
            Ok(r) if r.status == 200 => return parse(&r.body_str()).ok(),
            Ok(r) if r.status == 202 => std::thread::sleep(Duration::from_millis(30)),
            _ => return None,
        }
    }
    None
}

/// `GET /metrics/history?window=S`: counter deltas and per-second rates
/// over the last `S` seconds (default 60), computed from the background
/// tick's ring. On a coordinator the document also carries one entry per
/// scraped backend.
fn metrics_history_endpoint(state: &Arc<ServerState>, path: &str) -> Response {
    let (route, query) = path.split_once('?').map_or((path, ""), |(r, q)| (r, q));
    if route != "/metrics/history" {
        return ApiError::new(404, "not_found", format!("no such endpoint `{route}`")).into();
    }
    let mut window_secs: u64 = 60;
    for pair in query.split('&') {
        if let Some(v) = pair.strip_prefix("window=") {
            match v.parse::<u64>() {
                Ok(secs) if secs > 0 => window_secs = secs,
                _ => {
                    return ApiError::new(
                        400,
                        "bad_query",
                        "window must be a positive integer of seconds",
                    )
                    .into();
                }
            }
        }
    }
    let window_millis = window_secs.saturating_mul(1000);
    let history = state.history.lock().expect("history lock");
    let mut doc = format!(
        "{{\"window_seconds\":{window_secs},\"interval_ms\":{},\"node\":{}",
        state.options.metrics_interval.as_millis(),
        ring_json(&history.local, window_millis),
    );
    if state.coordinator.is_some() {
        let backends: Vec<String> = history
            .backends
            .iter()
            .map(|(addr, ring)| format!("\"{}\":{}", escape(addr), ring_json(ring, window_millis)))
            .collect();
        doc.push_str(&format!(",\"backends\":{{{}}}", backends.join(",")));
    }
    doc.push_str("}\n");
    Response::json(200, doc)
}

/// One ring's history document: window bookkeeping plus, per series,
/// either the horizon delta + rate (counters) or the latest value
/// (gauges). `null` deltas mean the ring has fewer than two windows.
fn ring_json(ring: &TimeSeriesRing, window_millis: u64) -> String {
    let newest = ring.newest();
    let mut series = Vec::with_capacity(ring.names().len());
    for name in ring.names() {
        if metrics::HISTORY_GAUGES.contains(&name.as_str()) {
            let value = newest
                .and_then(|w| ring.column(name).and_then(|c| w.values.get(c).copied()))
                .unwrap_or(0);
            series.push(format!("\"{}\":{{\"value\":{value}}}", escape(name)));
        } else {
            let delta = ring.delta(name, window_millis);
            let rate = ring.rate_per_sec(name, window_millis);
            series.push(format!(
                "\"{}\":{{\"delta\":{},\"rate_per_sec\":{}}}",
                escape(name),
                delta.map_or_else(|| "null".to_owned(), |d| d.to_string()),
                rate.map_or_else(|| "null".to_owned(), |r| format!("{r:.3}")),
            ));
        }
    }
    format!(
        "{{\"windows\":{},\"dropped\":{},\"series\":{{{}}}}}",
        ring.len(),
        ring.dropped(),
        series.join(",")
    )
}

/// `GET /jobs/<id>/progress`: a chunked ndjson stream of progress lines,
/// one every `progress_interval`, ending with the line that carries the
/// job's terminal status. Jobs without live progress (local execution,
/// cache hits) stream their status transitions only.
fn stream_progress(state: &Arc<ServerState>, stream: &mut TcpStream, id: &str, started: Instant) {
    let found = state
        .jobs
        .table
        .lock()
        .expect("job table lock")
        .get(id)
        .is_some();
    if !found {
        state.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
        let response: Response =
            ApiError::new(404, "not_found", format!("no job `{}`", escape(id))).into();
        response.write(stream);
        return;
    }
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    loop {
        let (status, progress) = {
            let table = state.jobs.table.lock().expect("job table lock");
            let Some(job) = table.get(id) else { break };
            (job.status, job.progress.clone())
        };
        let line = progress.map_or_else(
            || format!("{{\"status\":\"{}\"}}\n", status.label()),
            |p| p.snapshot(status.label()),
        );
        if write_chunk(stream, line.as_bytes()).is_err() {
            return; // the client went away mid-stream
        }
        if matches!(status, JobStatus::Done | JobStatus::Failed)
            || state.shutting_down()
            || started.elapsed() > state.options.request_deadline
        {
            break;
        }
        std::thread::sleep(state.options.progress_interval);
    }
    let _ = stream.write_all(b"0\r\n\r\n");
    state
        .metrics
        .record_request_micros(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
}

/// Writes one HTTP/1.1 chunk (hex length line, payload, CRLF).
fn write_chunk(stream: &mut TcpStream, bytes: &[u8]) -> io::Result<()> {
    stream.write_all(format!("{:x}\r\n", bytes.len()).as_bytes())?;
    stream.write_all(bytes)?;
    stream.write_all(b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn start(options: ServerOptions) -> RunningServer {
        Server::bind("127.0.0.1:0", options)
            .expect("bind an ephemeral port")
            .spawn()
            .expect("spawn the accept loop")
    }

    #[test]
    fn health_metrics_and_404_routes() {
        let server = start(ServerOptions::default());
        let addr = server.addr();
        let health = client::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body_str().contains("\"status\":\"ok\""));
        let metrics = client::get(addr, "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body_str().contains("refrint_http_requests_total"));
        let missing = client::get(addr, "/nope").unwrap();
        assert_eq!(missing.status, 404);
        let wrong_method = client::get(addr, "/run").unwrap();
        assert_eq!(wrong_method.status, 405);
        assert_eq!(wrong_method.header("Allow"), Some("POST"));
        server.shutdown();
    }

    #[test]
    fn run_misses_then_hits_the_cache_with_identical_bytes() {
        let server = start(ServerOptions::default());
        let addr = server.addr();
        let body = "{\"app\": \"lu\", \"refs\": 400, \"cores\": 2}";
        let first = client::post(addr, "/run", body.as_bytes()).unwrap();
        assert_eq!(first.status, 200, "{}", first.body_str());
        assert_eq!(first.header("X-Refrint-Cache"), Some("miss"));
        let second = client::post(addr, "/run", body.as_bytes()).unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(second.header("X-Refrint-Cache"), Some("hit"));
        assert_eq!(first.body, second.body, "cache must return identical bytes");
        let metrics = client::get(addr, "/metrics").unwrap();
        assert!(metrics.body_str().contains("refrint_cache_hits_total 1"));
        server.shutdown();
    }

    #[test]
    fn async_jobs_complete_and_serve_their_result() {
        let server = start(ServerOptions::default());
        let addr = server.addr();
        let body = "{\"app\": \"fft\", \"refs\": 400, \"cores\": 2, \"mode\": \"async\"}";
        let accepted = client::post(addr, "/run", body.as_bytes()).unwrap();
        assert_eq!(accepted.status, 202, "{}", accepted.body_str());
        let id = accepted.header("X-Refrint-Job").unwrap().to_owned();
        let mut result = None;
        for _ in 0..200 {
            let r = client::get(addr, &format!("/jobs/{id}/result")).unwrap();
            if r.status != 202 {
                result = Some(r);
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        let result = result.expect("job finishes");
        assert_eq!(result.status, 200);
        assert!(result.body_str().contains("\"workload\":\"fft\""));
        let status = client::get(addr, &format!("/jobs/{id}")).unwrap();
        assert!(status.body_str().contains("\"status\":\"done\""));
        let missing = client::get(addr, "/jobs/j9999/result").unwrap();
        assert_eq!(missing.status, 404);
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = start(ServerOptions::default());
        let addr = server.addr();
        let bye = client::post(addr, "/shutdown", b"").unwrap();
        assert_eq!(bye.status, 200);
        server.shutdown(); // joins; must not hang
                           // The port is released: a new bind to the same address succeeds
                           // (retry a few times for TIME_WAIT-free reuse on the OS's pace).
        let mut rebound = false;
        for _ in 0..50 {
            if TcpListener::bind(addr).is_ok() {
                rebound = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(rebound, "the listener must be closed after shutdown");
    }
}
