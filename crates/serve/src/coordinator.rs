//! Scale-out sweep coordination across `refrint-serve` backends.
//!
//! A coordinator is an ordinary server whose workers, instead of
//! simulating locally, split each job into point-level `POST /run`
//! requests and fan them out over the existing HTTP API to a pool of
//! backend nodes. Because every point is an independent simulation with
//! its own seed-derived streams, and because the merge below replays the
//! exact `BTreeMap` ordering of the local
//! [`SweepRunner`](refrint::sweep::SweepRunner), the coordinator's sweep
//! response is **byte-identical** to a local run at any backend count —
//! the same invariant the thread-level runner already clears, lifted one
//! level up.
//!
//! Failure handling: each point is retried with bounded exponential
//! backoff across the pool; a backend that fails repeatedly trips a
//! per-backend circuit breaker and is skipped until a cooldown passes
//! (half-open probing). Every dispatch attempt is recorded as a
//! [`DispatchSpan`] and rendered under the request's `execute` stage in
//! `/jobs/<id>/trace`.
//!
//! Custom [`PolicyFactory`](refrint_edram::model::PolicyFactory) models
//! are not expressible over the HTTP API (they are in-process trait
//! objects), so sweeps carrying them are rejected with a typed error —
//! everything `POST /sweep` accepts is coverable.

use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use refrint::anomaly::{detect_points, PointMetrics};
use refrint::experiment::ExperimentConfig;
use refrint::sweep::axis_suffix;
use refrint::{CoherenceProtocol, RetentionProfile};
use refrint_edram::policy::RefreshPolicy;
use refrint_engine::json::{escape, parse, Value};
use refrint_engine::stats::Histogram;
use refrint_obs::anomaly::AnomalyTuning;
use refrint_obs::log::{Level, LogFormat, Logger};
use refrint_obs::otlp::point_span_id;
use refrint_obs::span::{DispatchSpan, TraceContext};

use crate::api::{self, ApiError};
use crate::client::{self, Timeouts};
use crate::disk_cache::DiskCache;
use crate::http::elapsed_nanos;
use crate::jobs::{JobOutput, JobProgress, JobWork, PointOutcome, ResultCache};
use crate::metrics::{Metrics, LATENCY_BOUNDS_MICROS};

/// Dispatch attempts recorded per job before the span list is capped (a
/// huge sweep should not balloon its own trace document).
const MAX_RECORDED_DISPATCH: usize = 64;

/// Tunables of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Initial backend addresses (`host:port`), resolved at bind time.
    /// More can join later via `POST /backends`.
    pub backends: Vec<String>,
    /// Dispatch attempts per point before the job fails.
    pub max_attempts: u32,
    /// First retry delay; doubled per attempt up to [`Self::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff delay.
    pub backoff_cap: Duration,
    /// Consecutive failures that trip a backend's circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-open probing.
    pub breaker_cooldown: Duration,
    /// Target concurrent dispatches per backend (sizes the fan-out pool).
    pub per_backend_inflight: usize,
    /// Socket read deadline for one point dispatch.
    pub dispatch_timeout: Duration,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        CoordinatorOptions {
            backends: Vec::new(),
            max_attempts: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
            per_backend_inflight: 4,
            dispatch_timeout: Duration::from_secs(120),
        }
    }
}

/// A `POST /run` request re-expressed from its raw fields, so the
/// coordinator can forward a validated job to a backend unchanged. The
/// trace name is the client-supplied plain file name (pre-resolution):
/// backends resolve it against their *own* `--trace-dir`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointRequest {
    /// Application preset name.
    pub app: Option<String>,
    /// Trace file name (plain, relative to the backend's trace dir).
    pub trace: Option<String>,
    /// SRAM baseline instead of the eDRAM configuration.
    pub sram: bool,
    /// Refresh-policy label.
    pub policy: Option<String>,
    /// Retention time in microseconds.
    pub retention_us: Option<u64>,
    /// Per-bank retention-distribution label (only set when non-default,
    /// so default point bodies keep their historical bytes).
    pub retention_profile: Option<String>,
    /// Coherence-protocol label (only set when non-default).
    pub protocol: Option<String>,
    /// References per thread.
    pub refs: Option<u64>,
    /// Seed override.
    pub seed: Option<u64>,
    /// Core-count override.
    pub cores: Option<usize>,
}

impl PointRequest {
    /// The `POST /run` body this request serializes to (only the fields
    /// that were actually set, so backend-side defaulting matches).
    #[must_use]
    pub fn body(&self) -> String {
        let mut fields = Vec::new();
        if let Some(app) = &self.app {
            fields.push(format!("\"app\":\"{}\"", escape(app)));
        }
        if let Some(trace) = &self.trace {
            fields.push(format!("\"trace\":\"{}\"", escape(trace)));
        }
        if self.sram {
            fields.push("\"sram\":true".to_owned());
        }
        if let Some(policy) = &self.policy {
            fields.push(format!("\"policy\":\"{}\"", escape(policy)));
        }
        if let Some(us) = self.retention_us {
            fields.push(format!("\"retention_us\":{us}"));
        }
        if let Some(profile) = &self.retention_profile {
            fields.push(format!("\"retention_profile\":\"{}\"", escape(profile)));
        }
        if let Some(protocol) = &self.protocol {
            fields.push(format!("\"protocol\":\"{}\"", escape(protocol)));
        }
        if let Some(refs) = self.refs {
            fields.push(format!("\"refs\":{refs}"));
        }
        if let Some(seed) = self.seed {
            fields.push(format!("\"seed\":{seed}"));
        }
        if let Some(cores) = self.cores {
            fields.push(format!("\"cores\":{cores}"));
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// One backend of the pool, with its health and dispatch accounting.
#[derive(Debug)]
struct BackendSlot {
    addr: SocketAddr,
    label: String,
    inflight: usize,
    consecutive_failures: u32,
    open_until: Option<Instant>,
    dispatched: u64,
    ok: u64,
    failed: u64,
}

impl BackendSlot {
    fn new(addr: SocketAddr, label: String) -> Self {
        BackendSlot {
            addr,
            label,
            inflight: 0,
            consecutive_failures: 0,
            open_until: None,
            dispatched: 0,
            ok: 0,
            failed: 0,
        }
    }

    fn healthy(&self, now: Instant) -> bool {
        self.open_until.is_none_or(|until| until <= now)
    }
}

/// What a dispatched job may consult and update: the server's trace
/// directory (per-point cache keys), its two result caches, its metrics
/// counters, the request's trace context (propagated as `traceparent` on
/// every dispatched `POST /run`) and the job's live progress.
#[derive(Debug)]
pub struct DispatchEnv<'a> {
    /// The server's trace directory, for canonical per-point cache keys.
    pub trace_dir: Option<&'a Path>,
    /// The in-memory result cache, consulted and fed per point.
    pub memory_cache: &'a Mutex<ResultCache>,
    /// The persistent result cache, when the server has one.
    pub disk_cache: Option<&'a DiskCache>,
    /// The server's metrics (disk-cache hit/miss counters).
    pub metrics: &'a Metrics,
    /// The job's trace context; point `i` is dispatched with a
    /// `traceparent` naming the deterministic point anchor span, so the
    /// backend's trace arrives pre-parented for stitching.
    pub trace: Option<&'a TraceContext>,
    /// Live progress for `GET /jobs/<id>/progress`, updated per point.
    pub progress: Option<&'a JobProgress>,
}

/// One finished sweep point: the verbatim report text to merge plus the
/// [`PointOutcome`] describing where it ran.
type PointResult = Result<(String, PointOutcome), ApiError>;

/// A successfully dispatched point: the backend's verbatim response body
/// plus where and when it ran, for trace stitching and live progress.
#[derive(Debug)]
struct Dispatched {
    body: String,
    backend: SocketAddr,
    /// The backend-side job id (`x-refrint-job`), for fetching its trace.
    job: Option<String>,
    start_nanos: u64,
    dur_nanos: u64,
}

/// The backend pool and dispatch logic of a coordinator-mode server.
#[derive(Debug)]
pub struct Coordinator {
    opts: CoordinatorOptions,
    pool: Mutex<Vec<BackendSlot>>,
    logger: Logger,
    /// Per-backend dispatch round-trip latency (microseconds recorded,
    /// seconds rendered), keyed by resolved address. Separates network +
    /// backend-queue latency from the coordinator's own sim-free view.
    durations: Mutex<BTreeMap<String, Histogram>>,
}

impl Coordinator {
    /// Builds a coordinator and registers the configured backends
    /// (addresses are resolved now; reachability is probed lazily, so
    /// backends may come up after the coordinator does).
    ///
    /// # Errors
    ///
    /// When a configured backend address does not resolve.
    pub fn new(
        opts: CoordinatorOptions,
        log_level: Level,
        log_format: LogFormat,
    ) -> Result<Coordinator, ApiError> {
        let coordinator = Coordinator {
            opts: opts.clone(),
            pool: Mutex::new(Vec::new()),
            logger: Logger::to_stderr(log_level, log_format),
            durations: Mutex::new(BTreeMap::new()),
        };
        for addr in &opts.backends {
            coordinator.register(addr, false)?;
        }
        Ok(coordinator)
    }

    /// Registers a backend by address, deduplicating on the resolved
    /// socket address. With `probe`, the backend must answer
    /// `GET /healthz` first.
    ///
    /// # Errors
    ///
    /// `bad_backend` (422) when the address does not resolve;
    /// `backend_unreachable` (502) when a probed backend does not answer.
    pub fn register(&self, addr: &str, probe: bool) -> Result<SocketAddr, ApiError> {
        let resolved = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut it| it.next())
            .ok_or_else(|| {
                ApiError::new(
                    422,
                    "bad_backend",
                    format!("cannot resolve backend address `{addr}`"),
                )
            })?;
        if probe {
            let answer = client::request_with_timeouts(
                resolved,
                "GET",
                "/healthz",
                None,
                &[],
                Timeouts {
                    connect: Duration::from_secs(2),
                    read: Duration::from_secs(5),
                    write: Duration::from_secs(2),
                },
            );
            if !answer.is_ok_and(|r| r.status == 200) {
                return Err(ApiError::new(
                    502,
                    "backend_unreachable",
                    format!("backend {resolved} did not answer GET /healthz"),
                ));
            }
        }
        let mut pool = self.pool.lock().expect("backend pool lock");
        if !pool.iter().any(|slot| slot.addr == resolved) {
            self.logger
                .info("backend_registered", &[("backend", resolved.to_string())]);
            pool.push(BackendSlot::new(resolved, addr.to_owned()));
        }
        Ok(resolved)
    }

    /// Number of registered backends.
    #[must_use]
    pub fn backend_count(&self) -> usize {
        self.pool.lock().expect("backend pool lock").len()
    }

    /// The resolved addresses of every registered backend (scrape list
    /// for the coordinator's per-backend metrics history).
    #[must_use]
    pub fn backend_addrs(&self) -> Vec<SocketAddr> {
        self.pool
            .lock()
            .expect("backend pool lock")
            .iter()
            .map(|slot| slot.addr)
            .collect()
    }

    /// The `GET /backends` JSON document.
    #[must_use]
    pub fn backends_doc(&self) -> String {
        let now = Instant::now();
        let pool = self.pool.lock().expect("backend pool lock");
        let entries: Vec<String> = pool
            .iter()
            .map(|slot| {
                format!(
                    concat!(
                        "{{\"addr\":\"{}\",\"label\":\"{}\",\"healthy\":{},",
                        "\"inflight\":{},\"consecutive_failures\":{},",
                        "\"dispatched\":{},\"ok\":{},\"failed\":{}}}"
                    ),
                    slot.addr,
                    escape(&slot.label),
                    slot.healthy(now),
                    slot.inflight,
                    slot.consecutive_failures,
                    slot.dispatched,
                    slot.ok,
                    slot.failed,
                )
            })
            .collect();
        format!("{{\"backends\":[{}]}}\n", entries.join(","))
    }

    /// Prometheus text lines for the per-backend counters, appended to the
    /// server's `/metrics` rendering.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        let now = Instant::now();
        let pool = self.pool.lock().expect("backend pool lock");
        let mut out = String::new();
        for (name, help, kind) in [
            (
                "refrint_backend_dispatched_total",
                "Point dispatches attempted per backend.",
                "counter",
            ),
            (
                "refrint_backend_ok_total",
                "Successful point dispatches per backend.",
                "counter",
            ),
            (
                "refrint_backend_failed_total",
                "Failed point dispatches per backend.",
                "counter",
            ),
            (
                "refrint_backend_inflight",
                "Dispatches currently in flight per backend.",
                "gauge",
            ),
            (
                "refrint_backend_breaker_open",
                "Whether the backend's circuit breaker is open (1) or closed (0).",
                "gauge",
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for slot in pool.iter() {
                let value = match name {
                    "refrint_backend_dispatched_total" => slot.dispatched,
                    "refrint_backend_ok_total" => slot.ok,
                    "refrint_backend_failed_total" => slot.failed,
                    "refrint_backend_inflight" => slot.inflight as u64,
                    _ => u64::from(!slot.healthy(now)),
                };
                out.push_str(&format!("{name}{{backend=\"{}\"}} {value}\n", slot.addr));
            }
        }
        drop(pool);
        let durations = self.durations.lock().expect("dispatch duration lock");
        out.push_str(
            "# HELP refrint_dispatch_duration_seconds Dispatch round-trip latency per backend \
             (network + backend queue + backend sim).\n\
             # TYPE refrint_dispatch_duration_seconds histogram\n",
        );
        for (backend, h) in durations.iter() {
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds().iter().zip(h.buckets()) {
                cumulative += count;
                out.push_str(&format!(
                    "refrint_dispatch_duration_seconds_bucket{{backend=\"{backend}\",le=\"{}\"}} \
                     {cumulative}\n",
                    *bound as f64 / 1e6
                ));
            }
            out.push_str(&format!(
                "refrint_dispatch_duration_seconds_bucket{{backend=\"{backend}\",le=\"+Inf\"}} \
                 {}\n",
                h.count()
            ));
            out.push_str(&format!(
                "refrint_dispatch_duration_seconds_sum{{backend=\"{backend}\"}} {:.6}\n",
                h.sum() as f64 / 1e6
            ));
            out.push_str(&format!(
                "refrint_dispatch_duration_seconds_count{{backend=\"{backend}\"}} {}\n",
                h.count()
            ));
        }
        out
    }

    /// Records one dispatch round-trip into the per-backend histogram.
    fn record_duration(&self, addr: SocketAddr, dur_nanos: u64) {
        let mut durations = self.durations.lock().expect("dispatch duration lock");
        durations
            .entry(addr.to_string())
            .or_insert_with(|| Histogram::with_bounds(&LATENCY_BOUNDS_MICROS))
            .record(dur_nanos / 1_000);
    }

    /// Picks the healthiest, least-loaded backend, preferring any other
    /// candidate over `exclude` (the backend that just failed). `None`
    /// when every backend's breaker is open or the pool is empty.
    fn acquire(&self, exclude: Option<SocketAddr>) -> Option<SocketAddr> {
        let now = Instant::now();
        let mut pool = self.pool.lock().expect("backend pool lock");
        let pick = |pool: &Vec<BackendSlot>, skip: Option<SocketAddr>| {
            let mut best: Option<usize> = None;
            for (i, slot) in pool.iter().enumerate() {
                if !slot.healthy(now) || Some(slot.addr) == skip {
                    continue;
                }
                if best.is_none_or(|b: usize| slot.inflight < pool[b].inflight) {
                    best = Some(i);
                }
            }
            best
        };
        let best = pick(&pool, exclude).or_else(|| pick(&pool, None))?;
        let slot = &mut pool[best];
        slot.inflight += 1;
        slot.dispatched += 1;
        Some(slot.addr)
    }

    /// Returns a backend after a dispatch, updating its breaker state.
    fn release(&self, addr: SocketAddr, ok: bool) {
        let mut pool = self.pool.lock().expect("backend pool lock");
        if let Some(slot) = pool.iter_mut().find(|slot| slot.addr == addr) {
            slot.inflight = slot.inflight.saturating_sub(1);
            if ok {
                slot.ok += 1;
                slot.consecutive_failures = 0;
                slot.open_until = None;
            } else {
                slot.failed += 1;
                slot.consecutive_failures += 1;
                if slot.consecutive_failures >= self.opts.breaker_threshold {
                    slot.open_until = Some(Instant::now() + self.opts.breaker_cooldown);
                    self.logger.warn(
                        "backend_breaker_open",
                        &[
                            ("backend", addr.to_string()),
                            (
                                "cooldown_ms",
                                self.opts.breaker_cooldown.as_millis().to_string(),
                            ),
                        ],
                    );
                }
            }
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(10);
        (self.opts.backoff_base * factor).min(self.opts.backoff_cap)
    }

    /// Dispatches one `POST /run` body, retrying across the pool with
    /// exponential backoff. Returns the backend's response body (bytes
    /// identical to a local run) plus where it ran and when, for trace
    /// stitching. `traceparent` is propagated verbatim on every attempt —
    /// it only affects the backend's trace document, never its response
    /// bytes, so byte-identity is preserved.
    fn dispatch_point(
        &self,
        body: &str,
        traceparent: Option<&str>,
        spans: &Mutex<Vec<DispatchSpan>>,
        epoch: Instant,
    ) -> Result<Dispatched, ApiError> {
        let headers: Vec<(&str, &str)> =
            traceparent.iter().map(|tp| ("traceparent", *tp)).collect();
        let mut exclude = None;
        let mut last: Option<ApiError> = None;
        for attempt in 1..=self.opts.max_attempts {
            let Some(addr) = self.acquire(exclude) else {
                last.get_or_insert_with(|| {
                    ApiError::new(
                        502,
                        "no_backends",
                        "no healthy backend is registered; POST /backends to add one",
                    )
                });
                std::thread::sleep(self.backoff(attempt));
                continue;
            };
            let start_nanos = elapsed_nanos(epoch);
            let sent = Instant::now();
            let answer = client::request_with_timeouts(
                addr,
                "POST",
                "/run",
                Some(body.as_bytes()),
                &headers,
                Timeouts {
                    connect: Duration::from_secs(5),
                    read: self.opts.dispatch_timeout,
                    write: Duration::from_secs(10),
                },
            );
            let dur_nanos = elapsed_nanos(sent);
            self.record_duration(addr, dur_nanos);
            match answer {
                Ok(response) if response.status == 200 => {
                    self.release(addr, true);
                    record_dispatch(spans, addr, attempt, start_nanos, dur_nanos, "ok");
                    let job = response.header("x-refrint-job").map(str::to_owned);
                    return Ok(Dispatched {
                        body: response.body_str(),
                        backend: addr,
                        job,
                        start_nanos,
                        dur_nanos,
                    });
                }
                Ok(response) if (400..500).contains(&response.status) => {
                    // The backend is healthy — it answered — but the point
                    // itself was rejected; retrying elsewhere cannot help.
                    self.release(addr, true);
                    record_dispatch(spans, addr, attempt, start_nanos, dur_nanos, "error");
                    return Err(ApiError::new(
                        502,
                        "backend_rejected",
                        format!(
                            "backend {addr} rejected the point with {}: {}",
                            response.status,
                            response.body_str().trim()
                        ),
                    ));
                }
                Ok(response) => {
                    self.release(addr, false);
                    record_dispatch(spans, addr, attempt, start_nanos, dur_nanos, "error");
                    self.logger.warn(
                        "dispatch_failed",
                        &[
                            ("backend", addr.to_string()),
                            ("status", response.status.to_string()),
                            ("attempt", attempt.to_string()),
                        ],
                    );
                    last = Some(ApiError::new(
                        502,
                        "backend_failed",
                        format!(
                            "backend {addr} answered {} on attempt {attempt}",
                            response.status
                        ),
                    ));
                    exclude = Some(addr);
                }
                Err(e) => {
                    self.release(addr, false);
                    record_dispatch(spans, addr, attempt, start_nanos, dur_nanos, "error");
                    self.logger.warn(
                        "dispatch_failed",
                        &[
                            ("backend", addr.to_string()),
                            ("error", e.to_string()),
                            ("attempt", attempt.to_string()),
                        ],
                    );
                    last = Some(ApiError::new(
                        502,
                        "backend_failed",
                        format!("backend {addr} failed on attempt {attempt}: {e}"),
                    ));
                    exclude = Some(addr);
                }
            }
            if attempt < self.opts.max_attempts {
                std::thread::sleep(self.backoff(attempt));
            }
        }
        Err(last.unwrap_or_else(|| {
            ApiError::new(
                502,
                "no_backends",
                "no healthy backend is registered; POST /backends to add one",
            )
        }))
    }

    /// Executes a job by dispatching it to the backend pool. The
    /// counterpart of [`crate::jobs::execute`] for coordinator-mode
    /// workers: same inputs, same output contract, same bytes on success.
    #[must_use]
    pub fn execute(&self, work: &JobWork, env: &DispatchEnv<'_>) -> JobOutput {
        match work {
            JobWork::Run { point, .. } => self.execute_run(point, env),
            JobWork::Sweep { config, anomaly } => self.execute_sweep(config, *anomaly, env),
        }
    }

    fn execute_run(&self, point: &PointRequest, env: &DispatchEnv<'_>) -> JobOutput {
        let epoch = Instant::now();
        let spans = Mutex::new(Vec::new());
        let traceparent = env
            .trace
            .map(|t| t.to_traceparent(&point_span_id(&t.trace_id, 0)));
        match self.dispatch_point(&point.body(), traceparent.as_deref(), &spans, epoch) {
            Ok(dispatched) => {
                let refs = parse_report(dispatched.body.trim_end()).map_or(0, |r| r.dl1_accesses);
                let outcome = PointOutcome {
                    index: 0,
                    label: run_label(point),
                    node: dispatched.backend.to_string(),
                    backend_job: dispatched.job,
                    start_nanos: dispatched.start_nanos,
                    dur_nanos: dispatched.dur_nanos,
                };
                if let Some(progress) = env.progress {
                    progress.record_point(&outcome.node, refs);
                }
                let mut output = JobOutput::from_bytes(200, Arc::new(dispatched.body.into_bytes()));
                output.refs = refs;
                output.sim_seconds = epoch.elapsed().as_secs_f64();
                output.dispatch = spans.into_inner().expect("dispatch span lock");
                output.points = vec![outcome];
                output
            }
            Err(e) => dispatch_failure(&e, spans),
        }
    }

    fn execute_sweep(
        &self,
        config: &ExperimentConfig,
        anomaly: AnomalyTuning,
        env: &DispatchEnv<'_>,
    ) -> JobOutput {
        let epoch = Instant::now();
        let spans = Mutex::new(Vec::new());
        let points = match sweep_points(config) {
            Ok(points) => points,
            Err(e) => return dispatch_failure(&e, spans),
        };

        let total = points.len();
        let next = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let results: Mutex<Vec<Option<PointResult>>> =
            Mutex::new((0..total).map(|_| None).collect());
        let workers = {
            let backends = self.backend_count().max(1);
            total
                .min(backends * self.opts.per_backend_inflight.max(1))
                .max(1)
        };
        let worker = || loop {
            if aborted.load(Ordering::Relaxed) {
                break;
            }
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= total {
                break;
            }
            let result = self.run_point(index, &points[index], env, &spans, epoch);
            if result.is_err() {
                aborted.store(true, Ordering::Relaxed);
            }
            results.lock().expect("sweep results lock")[index] = Some(result);
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(worker);
            }
        });

        let results = results.into_inner().expect("sweep results lock");
        // First-error-in-job-order, mirroring the local runner's contract.
        for slot in &results {
            if let Some(Err(e)) = slot {
                return dispatch_failure(e, spans);
            }
        }

        // Merge in the local runner's exact order: SRAM reports keyed by
        // workload, eDRAM reports keyed by (workload, retention, policy) —
        // both BTreeMaps, both iterated ascending.
        let mut sram: BTreeMap<String, String> = BTreeMap::new();
        let mut edram: BTreeMap<(String, u64, String), String> = BTreeMap::new();
        let mut outcomes = Vec::with_capacity(total);
        for (point, slot) in points.iter().zip(results) {
            let Some(Ok((body, outcome))) = slot else {
                return dispatch_failure(
                    &ApiError::new(502, "backend_failed", "a sweep point was never dispatched"),
                    spans,
                );
            };
            outcomes.push(outcome);
            let report = body.trim_end().to_owned();
            match &point.kind {
                PointKind::Sram { key } => {
                    sram.insert(key.clone(), report);
                }
                PointKind::Edram {
                    retention_us,
                    policy,
                } => {
                    edram.insert(
                        (point.workload.clone(), *retention_us, policy.clone()),
                        report,
                    );
                }
            }
        }

        let mut refs = 0u64;
        let mut runs = Vec::with_capacity(sram.len() + edram.len());
        let mut metric_points = Vec::with_capacity(edram.len());
        for (workload, report) in &sram {
            match parse_report(report) {
                Ok(parsed) => refs += parsed.dl1_accesses,
                Err(e) => return dispatch_failure(&e, spans),
            }
            runs.push(refrint::json::sweep_run_entry(workload, None, report));
        }
        for ((workload, retention_us, policy), report) in &edram {
            let parsed = match parse_report(report) {
                Ok(parsed) => parsed,
                Err(e) => return dispatch_failure(&e, spans),
            };
            refs += parsed.dl1_accesses;
            runs.push(refrint::json::sweep_run_entry(
                workload,
                Some((*retention_us, policy)),
                report,
            ));
            metric_points.push((
                (workload.clone(), *retention_us, policy.clone()),
                PointMetrics {
                    system_energy_j: parsed.system_energy_j,
                    execution_cycles: parsed.execution_cycles,
                },
            ));
        }
        let anomalies = detect_points(&metric_points, anomaly);
        let workloads: Vec<String> = config
            .apps
            .iter()
            .map(|a| a.name().to_owned())
            .chain(config.traces.iter().map(|t| t.name.clone()))
            .collect();
        let doc =
            refrint::json::sweep_document(&workloads, &config.retentions_us, &runs, &anomalies);
        let mut output = JobOutput::from_bytes(200, Arc::new(format!("{doc}\n").into_bytes()));
        output.refs = refs;
        output.sim_seconds = epoch.elapsed().as_secs_f64();
        output.dispatch = spans.into_inner().expect("dispatch span lock");
        output.points = outcomes;
        output
    }

    /// Runs one sweep point: result caches first (memory, then disk),
    /// then a dispatched `POST /run`. Fresh results feed both caches, so
    /// a restarted coordinator with the same `--cache-dir` resumes where
    /// it left off.
    fn run_point(
        &self,
        index: usize,
        point: &SweepPoint,
        env: &DispatchEnv<'_>,
        spans: &Mutex<Vec<DispatchSpan>>,
        epoch: Instant,
    ) -> PointResult {
        let key = point_cache_key(&point.request, env.trace_dir);
        if let Some(key) = &key {
            let lookup = Instant::now();
            let memory_hit = env
                .memory_cache
                .lock()
                .expect("cache lock")
                .get(key)
                .map(|b| String::from_utf8_lossy(&b).into_owned());
            if let Some(body) = memory_hit {
                record_cache_hit(spans, epoch, lookup);
                return Ok(self.finish_point(index, point, body, None, env, epoch, lookup));
            }
            if let Some(disk) = env.disk_cache {
                if let Some(bytes) = disk.get(key) {
                    env.metrics.disk_cache_hits.fetch_add(1, Ordering::Relaxed);
                    env.memory_cache
                        .lock()
                        .expect("cache lock")
                        .insert(key.clone(), Arc::new(bytes.clone()));
                    record_cache_hit(spans, epoch, lookup);
                    let body = String::from_utf8_lossy(&bytes).into_owned();
                    return Ok(self.finish_point(index, point, body, None, env, epoch, lookup));
                }
                env.metrics
                    .disk_cache_misses
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let traceparent = env
            .trace
            .map(|t| t.to_traceparent(&point_span_id(&t.trace_id, index)));
        let dispatched =
            self.dispatch_point(&point.request.body(), traceparent.as_deref(), spans, epoch)?;
        if let Some(key) = &key {
            env.memory_cache
                .lock()
                .expect("cache lock")
                .insert(key.clone(), Arc::new(dispatched.body.clone().into_bytes()));
            if let Some(disk) = env.disk_cache {
                if let Err(e) = disk.put(key, dispatched.body.as_bytes()) {
                    self.logger
                        .warn("disk_cache_put_failed", &[("error", e.to_string())]);
                }
            }
        }
        let outcome = PointOutcome {
            index,
            label: point.label(),
            node: dispatched.backend.to_string(),
            backend_job: dispatched.job,
            start_nanos: dispatched.start_nanos,
            dur_nanos: dispatched.dur_nanos,
        };
        if let Some(progress) = env.progress {
            let refs = parse_report(dispatched.body.trim_end()).map_or(0, |r| r.dl1_accesses);
            progress.record_point(&outcome.node, refs);
        }
        Ok((dispatched.body, outcome))
    }

    /// Wraps a cache-served point body into the `(body, outcome)` pair and
    /// records its progress, attributing the point to `result-cache`.
    #[allow(clippy::too_many_arguments)]
    fn finish_point(
        &self,
        index: usize,
        point: &SweepPoint,
        body: String,
        backend_job: Option<String>,
        env: &DispatchEnv<'_>,
        epoch: Instant,
        lookup: Instant,
    ) -> (String, PointOutcome) {
        let outcome = PointOutcome {
            index,
            label: point.label(),
            node: "result-cache".to_owned(),
            backend_job,
            start_nanos: elapsed_nanos(epoch).saturating_sub(elapsed_nanos(lookup)),
            dur_nanos: elapsed_nanos(lookup),
        };
        if let Some(progress) = env.progress {
            let refs = parse_report(body.trim_end()).map_or(0, |r| r.dl1_accesses);
            progress.record_point(&outcome.node, refs);
        }
        (body, outcome)
    }
}

/// The display label of a single-point `POST /run` job: workload plus the
/// configuration axis it exercises.
fn run_label(point: &PointRequest) -> String {
    let workload = point
        .app
        .clone()
        .or_else(|| point.trace.clone())
        .unwrap_or_else(|| "run".to_owned());
    if point.sram {
        format!("{workload}/sram")
    } else if let (Some(us), Some(policy)) = (point.retention_us, &point.policy) {
        format!("{workload}/{us}us/{policy}")
    } else {
        workload
    }
}

/// A failed dispatch as a job output: the typed error document, with the
/// dispatch spans preserved so `/jobs/<id>/trace` shows what was tried.
fn dispatch_failure(e: &ApiError, spans: Mutex<Vec<DispatchSpan>>) -> JobOutput {
    let mut output = JobOutput::from_bytes(e.status, Arc::new(e.body()));
    output.dispatch = spans.into_inner().expect("dispatch span lock");
    output
}

fn record_dispatch(
    spans: &Mutex<Vec<DispatchSpan>>,
    addr: SocketAddr,
    attempt: u32,
    start_nanos: u64,
    dur_nanos: u64,
    outcome: &'static str,
) {
    let mut spans = spans.lock().expect("dispatch span lock");
    if spans.len() < MAX_RECORDED_DISPATCH {
        spans.push(DispatchSpan {
            backend: addr.to_string(),
            attempt,
            start_nanos,
            dur_nanos,
            outcome,
        });
    }
}

fn record_cache_hit(spans: &Mutex<Vec<DispatchSpan>>, epoch: Instant, lookup: Instant) {
    let mut spans = spans.lock().expect("dispatch span lock");
    if spans.len() < MAX_RECORDED_DISPATCH {
        spans.push(DispatchSpan {
            backend: "result-cache".to_owned(),
            attempt: 1,
            start_nanos: elapsed_nanos(epoch).saturating_sub(elapsed_nanos(lookup)),
            dur_nanos: elapsed_nanos(lookup),
            outcome: "cache",
        });
    }
}

/// The role of one sweep point in the merge. The `key` / `policy` strings
/// are the *composed* report keys — workload or policy label plus the
/// [`refrint::sweep::axis_suffix`] of any non-default protocol /
/// retention-profile axes — exactly what the local runner's merge uses.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PointKind {
    Sram { key: String },
    Edram { retention_us: u64, policy: String },
}

/// One point-level job of a fanned-out sweep.
#[derive(Debug, Clone)]
struct SweepPoint {
    workload: String,
    kind: PointKind,
    request: PointRequest,
}

impl SweepPoint {
    /// The point's stable display label (`lu/sram`, `fft/50us/R.valid`).
    fn label(&self) -> String {
        match &self.kind {
            PointKind::Sram { .. } => format!("{}/sram", self.workload),
            PointKind::Edram {
                retention_us,
                policy,
            } => format!("{}/{}us/{}", self.workload, retention_us, policy),
        }
    }
}

/// Enumerates a sweep's point jobs in the local runner's deterministic
/// order, with its duplicate-label/workload pre-checks.
fn sweep_points(config: &ExperimentConfig) -> Result<Vec<SweepPoint>, ApiError> {
    if !config.models.is_empty() {
        return Err(ApiError::new(
            422,
            "unsupported",
            "custom policy models are in-process trait objects and cannot be \
             dispatched to backends; run them with a local SweepRunner",
        ));
    }
    let mut labels = std::collections::BTreeSet::new();
    for label in config.policies.iter().map(RefreshPolicy::label) {
        if !labels.insert(label.clone()) {
            return Err(ApiError::new(
                422,
                "invalid_config",
                format!(
                    "duplicate refresh-policy label `{label}` in the sweep \
                     (reports are keyed by label)"
                ),
            ));
        }
    }
    // (name, forwardable trace file name) per workload, apps first — the
    // same workload order the local runner enumerates.
    let mut workloads: Vec<(String, Option<String>)> = Vec::new();
    for app in &config.apps {
        workloads.push((app.name().to_owned(), None));
    }
    for spec in &config.traces {
        let file = spec
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .ok_or_else(|| {
                ApiError::new(
                    422,
                    "invalid_config",
                    format!("trace path `{}` has no file name", spec.path.display()),
                )
            })?;
        workloads.push((spec.name.clone(), Some(file)));
    }
    let mut keys = std::collections::BTreeSet::new();
    for (key, _) in &workloads {
        if !keys.insert(key.clone()) {
            return Err(ApiError::new(
                422,
                "invalid_config",
                format!(
                    "duplicate workload `{key}` in the sweep \
                     (reports are keyed by workload name)"
                ),
            ));
        }
    }

    // The same axis expansion the local runner's `jobs()` performs:
    // workload → protocol → [one SRAM point, then retention → policy →
    // retention-profile]. Empty axes fall back to the single default point.
    let protocols = if config.protocols.is_empty() {
        vec![CoherenceProtocol::Mesi]
    } else {
        config.protocols.clone()
    };
    let profiles = if config.retention_profiles.is_empty() {
        vec![RetentionProfile::Uniform]
    } else {
        config.retention_profiles.clone()
    };
    let mut points = Vec::with_capacity(config.total_runs());
    for (workload, trace_file) in &workloads {
        let base = PointRequest {
            app: trace_file.is_none().then(|| workload.clone()),
            trace: trace_file.clone(),
            refs: Some(config.refs_per_thread),
            seed: Some(config.seed),
            cores: Some(config.cores),
            ..PointRequest::default()
        };
        for &protocol in &protocols {
            let protocol_label = (!protocol.is_default()).then(|| protocol.label().to_owned());
            points.push(SweepPoint {
                workload: workload.clone(),
                kind: PointKind::Sram {
                    key: format!(
                        "{workload}{}",
                        axis_suffix(protocol, RetentionProfile::Uniform)
                    ),
                },
                request: PointRequest {
                    sram: true,
                    protocol: protocol_label.clone(),
                    ..base.clone()
                },
            });
            for &retention_us in &config.retentions_us {
                for policy in &config.policies {
                    for &profile in &profiles {
                        points.push(SweepPoint {
                            workload: workload.clone(),
                            kind: PointKind::Edram {
                                retention_us,
                                policy: format!(
                                    "{}{}",
                                    policy.label(),
                                    axis_suffix(protocol, profile)
                                ),
                            },
                            request: PointRequest {
                                policy: Some(policy.label()),
                                retention_us: Some(retention_us),
                                retention_profile: (!profile.is_default()).then(|| profile.label()),
                                protocol: protocol_label.clone(),
                                ..base.clone()
                            },
                        });
                    }
                }
            }
        }
    }
    Ok(points)
}

/// The canonical cache key of one point, derived through the same
/// validation path `POST /run` uses — so a coordinator's per-point cache
/// entries are interchangeable with direct run requests.
fn point_cache_key(request: &PointRequest, trace_dir: Option<&Path>) -> Option<String> {
    let root = parse(&request.body()).ok()?;
    api::parse_run_request(&root, trace_dir)
        .ok()
        .map(|v| v.cache_key)
}

/// The fields the coordinator reads back out of a report body.
struct ParsedReport {
    execution_cycles: u64,
    system_energy_j: f64,
    dl1_accesses: u64,
}

/// Parses the three fields the merge needs from a backend's report JSON.
/// The engine parser round-trips floats bit-exactly (the PR 5 property),
/// so anomaly scores computed from these values match a local sweep's.
fn parse_report(report: &str) -> Result<ParsedReport, ApiError> {
    let malformed = || {
        ApiError::new(
            502,
            "backend_failed",
            "a backend returned a malformed report body",
        )
    };
    let doc = parse(report).map_err(|_| malformed())?;
    let execution_cycles = doc
        .get("execution_cycles")
        .and_then(Value::as_u64)
        .ok_or_else(malformed)?;
    let system_energy_j = doc
        .get("energy_j")
        .and_then(|e| e.get("system_total"))
        .and_then(Value::as_num)
        .ok_or_else(malformed)?;
    let dl1_accesses = doc
        .get("counts")
        .and_then(|c| c.get("dl1_accesses"))
        .and_then(Value::as_u64)
        .ok_or_else(malformed)?;
    Ok(ParsedReport {
        execution_cycles,
        system_energy_j,
        dl1_accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_workloads::apps::AppPreset;

    #[test]
    fn point_request_bodies_only_carry_set_fields() {
        let point = PointRequest {
            app: Some("lu".to_owned()),
            refs: Some(400),
            cores: Some(2),
            ..PointRequest::default()
        };
        assert_eq!(point.body(), "{\"app\":\"lu\",\"refs\":400,\"cores\":2}");
        assert_eq!(PointRequest::default().body(), "{}");
        let sram = PointRequest {
            trace: Some("lu.rft".to_owned()),
            sram: true,
            seed: Some(7),
            ..PointRequest::default()
        };
        assert_eq!(
            sram.body(),
            "{\"trace\":\"lu.rft\",\"sram\":true,\"seed\":7}"
        );
    }

    #[test]
    fn sweep_points_mirror_the_runner_enumeration() {
        let config = ExperimentConfig {
            apps: vec![AppPreset::Lu, AppPreset::Fft],
            retentions_us: vec![50, 100],
            policies: vec![
                RefreshPolicy::edram_baseline(),
                RefreshPolicy::recommended(),
            ],
            refs_per_thread: 500,
            seed: 9,
            cores: 2,
            ..ExperimentConfig::default()
        };
        let points = sweep_points(&config).unwrap();
        // Per workload: SRAM, then retention-major × policy-minor.
        assert_eq!(points.len(), 2 * (1 + 2 * 2));
        assert_eq!(points[0].workload, "lu");
        assert_eq!(
            points[0].kind,
            PointKind::Sram {
                key: "lu".to_owned()
            }
        );
        assert!(points[0].request.sram);
        assert_eq!(points[0].request.protocol, None);
        assert_eq!(points[1].request.retention_profile, None);
        assert_eq!(
            points[1].kind,
            PointKind::Edram {
                retention_us: 50,
                policy: RefreshPolicy::edram_baseline().label()
            }
        );
        assert_eq!(
            points[2].kind,
            PointKind::Edram {
                retention_us: 50,
                policy: RefreshPolicy::recommended().label()
            }
        );
        assert_eq!(
            points[3].kind,
            PointKind::Edram {
                retention_us: 100,
                policy: RefreshPolicy::edram_baseline().label()
            }
        );
        assert_eq!(points[5].workload, "fft");
        for p in &points {
            assert_eq!(p.request.refs, Some(500));
            assert_eq!(p.request.seed, Some(9));
            assert_eq!(p.request.cores, Some(2));
        }
    }

    #[test]
    fn sweep_points_expand_protocol_and_retention_profile_axes() {
        let config = ExperimentConfig {
            apps: vec![AppPreset::Lu],
            retentions_us: vec![50],
            policies: vec![RefreshPolicy::recommended()],
            protocols: vec![CoherenceProtocol::Mesi, CoherenceProtocol::Dragon],
            retention_profiles: vec![
                RetentionProfile::Uniform,
                RetentionProfile::Bimodal {
                    weak_pct: 25,
                    weak_retention_pct: 60,
                },
            ],
            refs_per_thread: 500,
            cores: 2,
            ..ExperimentConfig::default()
        };
        let points = sweep_points(&config).unwrap();
        // Per protocol: one SRAM point plus retention × policy × profile.
        assert_eq!(points.len(), 2 * (1 + 2));
        assert_eq!(points.len(), config.total_runs());
        let policy = RefreshPolicy::recommended().label();
        let kinds: Vec<PointKind> = points.iter().map(|p| p.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                PointKind::Sram {
                    key: "lu".to_owned()
                },
                PointKind::Edram {
                    retention_us: 50,
                    policy: policy.clone()
                },
                PointKind::Edram {
                    retention_us: 50,
                    policy: format!("{policy} bimodal(25,60)")
                },
                PointKind::Sram {
                    key: "lu dragon".to_owned()
                },
                PointKind::Edram {
                    retention_us: 50,
                    policy: format!("{policy} dragon")
                },
                PointKind::Edram {
                    retention_us: 50,
                    policy: format!("{policy} dragon bimodal(25,60)")
                },
            ]
        );
        // The forwarded bodies only carry non-default axis fields, so the
        // default points' run bodies (and thus their per-point cache keys)
        // are unchanged from a plain sweep.
        assert_eq!(points[0].request.protocol, None);
        assert_eq!(points[1].request.retention_profile, None);
        assert_eq!(points[3].request.protocol.as_deref(), Some("dragon"));
        assert_eq!(
            points[5].request.retention_profile.as_deref(),
            Some("bimodal(25,60)")
        );
        assert!(points[5].request.body().contains("\"protocol\":\"dragon\""));
        assert!(points[5]
            .request
            .body()
            .contains("\"retention_profile\":\"bimodal(25,60)\""));
    }

    #[test]
    fn duplicate_labels_and_workloads_are_rejected() {
        let config = ExperimentConfig {
            apps: vec![AppPreset::Lu],
            retentions_us: vec![50],
            policies: vec![RefreshPolicy::recommended(), RefreshPolicy::recommended()],
            cores: 2,
            ..ExperimentConfig::default()
        };
        let err = sweep_points(&config).unwrap_err();
        assert!(err.reason.contains("duplicate refresh-policy label"));

        let config = ExperimentConfig {
            apps: vec![AppPreset::Lu, AppPreset::Lu],
            retentions_us: vec![50],
            policies: vec![RefreshPolicy::recommended()],
            cores: 2,
            ..ExperimentConfig::default()
        };
        let err = sweep_points(&config).unwrap_err();
        assert!(err.reason.contains("duplicate workload"));
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let coordinator = Coordinator::new(
            CoordinatorOptions {
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_millis(30),
                ..CoordinatorOptions::default()
            },
            Level::Error,
            LogFormat::Text,
        )
        .unwrap();
        coordinator.register("127.0.0.1:1", false).unwrap();
        let addr = coordinator.acquire(None).unwrap();
        coordinator.release(addr, false);
        assert!(coordinator.acquire(None).is_some(), "one failure: closed");
        coordinator.release(addr, false);
        assert!(
            coordinator.acquire(None).is_none(),
            "second failure trips the breaker"
        );
        std::thread::sleep(Duration::from_millis(40));
        let probe = coordinator.acquire(None);
        assert_eq!(probe, Some(addr), "half-open after the cooldown");
        coordinator.release(addr, true);
        assert!(
            coordinator.acquire(None).is_some(),
            "a success closes the breaker"
        );
    }

    #[test]
    fn unresolvable_backends_are_a_typed_error() {
        let err = Coordinator::new(
            CoordinatorOptions {
                backends: vec!["definitely-not-a-host-9f3a:0:bad".to_owned()],
                ..CoordinatorOptions::default()
            },
            Level::Error,
            LogFormat::Text,
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind, "bad_backend");
    }

    #[test]
    fn registration_deduplicates_resolved_addresses() {
        let coordinator =
            Coordinator::new(CoordinatorOptions::default(), Level::Error, LogFormat::Text).unwrap();
        coordinator.register("127.0.0.1:7878", false).unwrap();
        coordinator.register("127.0.0.1:7878", false).unwrap();
        assert_eq!(coordinator.backend_count(), 1);
        assert!(coordinator
            .backends_doc()
            .contains("\"addr\":\"127.0.0.1:7878\""));
    }
}
