//! Raw event counts gathered during a simulation run.

use std::ops::{Add, AddAssign};

/// Every countable event the energy model needs, accumulated over one run.
///
/// Counts are chip-wide (summed over all 16 cores / banks). The breakdown
/// module converts them to joules using [`crate::tech::TechnologyParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyCounts {
    /// Committed instructions across all cores.
    pub instructions: u64,
    /// Execution time of the run, in cycles.
    pub cycles: u64,

    /// Accesses to instruction L1 caches.
    pub il1_accesses: u64,
    /// Accesses to data L1 caches.
    pub dl1_accesses: u64,
    /// Accesses to private L2 caches.
    pub l2_accesses: u64,
    /// Accesses to shared L3 banks.
    pub l3_accesses: u64,

    /// Line refreshes performed in L1 caches (instruction + data).
    pub l1_refreshes: u64,
    /// Line refreshes performed in L2 caches.
    pub l2_refreshes: u64,
    /// Line refreshes performed in L3 banks.
    pub l3_refreshes: u64,

    /// DRAM line reads (LLC misses).
    pub dram_reads: u64,
    /// DRAM line writes (write-backs, including the end-of-run flush).
    pub dram_writes: u64,

    /// Network flit-hops (all message classes).
    pub noc_flit_hops: u64,
}

impl EnergyCounts {
    /// An empty set of counts.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total L1 accesses (instruction + data).
    #[must_use]
    pub const fn l1_accesses(&self) -> u64 {
        self.il1_accesses + self.dl1_accesses
    }

    /// Total DRAM transactions.
    #[must_use]
    pub const fn dram_accesses(&self) -> u64 {
        self.dram_reads + self.dram_writes
    }

    /// Total refreshes across the hierarchy.
    #[must_use]
    pub const fn total_refreshes(&self) -> u64 {
        self.l1_refreshes + self.l2_refreshes + self.l3_refreshes
    }
}

impl Add for EnergyCounts {
    type Output = EnergyCounts;
    fn add(self, rhs: EnergyCounts) -> EnergyCounts {
        EnergyCounts {
            instructions: self.instructions + rhs.instructions,
            cycles: self.cycles + rhs.cycles,
            il1_accesses: self.il1_accesses + rhs.il1_accesses,
            dl1_accesses: self.dl1_accesses + rhs.dl1_accesses,
            l2_accesses: self.l2_accesses + rhs.l2_accesses,
            l3_accesses: self.l3_accesses + rhs.l3_accesses,
            l1_refreshes: self.l1_refreshes + rhs.l1_refreshes,
            l2_refreshes: self.l2_refreshes + rhs.l2_refreshes,
            l3_refreshes: self.l3_refreshes + rhs.l3_refreshes,
            dram_reads: self.dram_reads + rhs.dram_reads,
            dram_writes: self.dram_writes + rhs.dram_writes,
            noc_flit_hops: self.noc_flit_hops + rhs.noc_flit_hops,
        }
    }
}

impl AddAssign for EnergyCounts {
    fn add_assign(&mut self, rhs: EnergyCounts) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_totals() {
        let c = EnergyCounts {
            il1_accesses: 10,
            dl1_accesses: 5,
            dram_reads: 3,
            dram_writes: 4,
            l1_refreshes: 1,
            l2_refreshes: 2,
            l3_refreshes: 3,
            ..EnergyCounts::default()
        };
        assert_eq!(c.l1_accesses(), 15);
        assert_eq!(c.dram_accesses(), 7);
        assert_eq!(c.total_refreshes(), 6);
    }

    #[test]
    fn addition_is_fieldwise() {
        let mut a = EnergyCounts {
            instructions: 1,
            cycles: 2,
            l3_accesses: 3,
            noc_flit_hops: 4,
            ..EnergyCounts::default()
        };
        let b = EnergyCounts {
            instructions: 10,
            cycles: 20,
            l3_accesses: 30,
            noc_flit_hops: 40,
            ..EnergyCounts::default()
        };
        let sum = a + b;
        assert_eq!(sum.instructions, 11);
        assert_eq!(sum.cycles, 22);
        assert_eq!(sum.l3_accesses, 33);
        assert_eq!(sum.noc_flit_hops, 44);
        a += b;
        assert_eq!(a, sum);
    }

    #[test]
    fn default_is_all_zero() {
        let c = EnergyCounts::new();
        assert_eq!(c.total_refreshes(), 0);
        assert_eq!(c.dram_accesses(), 0);
        assert_eq!(c, EnergyCounts::default());
    }
}
