//! Normalisation and rendering of figure-shaped tables.
//!
//! Every figure in the paper plots energies (or execution times) normalised
//! to the full-SRAM baseline, grouped by retention time and labelled by
//! policy. This module provides the small data structures the figure
//! generators in the `refrint` crate use to emit those tables as plain text
//! or CSV.

use std::fmt;

/// One stacked bar of a figure: a label plus named components whose heights
/// already are normalised fractions of the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct StackedBar {
    /// The bar's label, e.g. `R.WB(32,32)`.
    pub label: String,
    /// `(component name, normalised value)` pairs, bottom-to-top.
    pub components: Vec<(String, f64)>,
}

impl StackedBar {
    /// Creates a bar from `(component, value)` pairs.
    #[must_use]
    pub fn new(label: &str, components: &[(&str, f64)]) -> Self {
        StackedBar {
            label: label.to_owned(),
            components: components
                .iter()
                .map(|(n, v)| ((*n).to_owned(), *v))
                .collect(),
        }
    }

    /// Total height of the bar.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.components.iter().map(|(_, v)| v).sum()
    }
}

/// A normalised data series: a group label (e.g. `50 us`) plus one stacked
/// bar per policy, in figure order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NormalizedSeries {
    /// The group label (in the paper, the retention time).
    pub group: String,
    /// The bars in this group.
    pub bars: Vec<StackedBar>,
}

impl NormalizedSeries {
    /// Creates an empty series for a group.
    #[must_use]
    pub fn new(group: &str) -> Self {
        NormalizedSeries {
            group: group.to_owned(),
            bars: Vec::new(),
        }
    }

    /// Adds a bar.
    pub fn push(&mut self, bar: StackedBar) {
        self.bars.push(bar);
    }

    /// Renders the series as a CSV block: header row of component names,
    /// then one row per bar.
    ///
    /// # Panics
    ///
    /// Panics if bars disagree on their component names.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if self.bars.is_empty() {
            return out;
        }
        let names: Vec<&str> = self.bars[0]
            .components
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        for bar in &self.bars {
            let bar_names: Vec<&str> = bar.components.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(bar_names, names, "bars must share component names");
        }
        out.push_str(&format!("group,policy,{},total\n", names.join(",")));
        for bar in &self.bars {
            let values: Vec<String> = bar
                .components
                .iter()
                .map(|(_, v)| format!("{v:.4}"))
                .collect();
            out.push_str(&format!(
                "{},{},{},{:.4}\n",
                self.group,
                bar.label,
                values.join(","),
                bar.total()
            ));
        }
        out
    }

    /// Renders the series as an aligned plain-text table.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if self.bars.is_empty() {
            return out;
        }
        let names: Vec<&str> = self.bars[0]
            .components
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        out.push_str(&format!("{:<16} {:<14}", "group", "policy"));
        for n in &names {
            out.push_str(&format!(" {n:>10}"));
        }
        out.push_str(&format!(" {:>10}\n", "total"));
        for bar in &self.bars {
            out.push_str(&format!("{:<16} {:<14}", self.group, bar.label));
            for (_, v) in &bar.components {
                out.push_str(&format!(" {v:>10.4}"));
            }
            out.push_str(&format!(" {:>10.4}\n", bar.total()));
        }
        out
    }
}

impl fmt::Display for NormalizedSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

/// Divides each value by `baseline`, guarding against a zero/negative
/// baseline (returns zero in that degenerate case).
#[must_use]
pub fn normalize(value: f64, baseline: f64) -> f64 {
    if baseline > 0.0 {
        value / baseline
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_total_sums_components() {
        let bar = StackedBar::new(
            "R.valid",
            &[("Dynamic", 0.1), ("Leakage", 0.2), ("Refresh", 0.05)],
        );
        assert!((bar.total() - 0.35).abs() < 1e-12);
        assert_eq!(bar.label, "R.valid");
        assert_eq!(bar.components.len(), 3);
    }

    #[test]
    fn csv_and_table_render_all_bars() {
        let mut series = NormalizedSeries::new("50 us");
        series.push(StackedBar::new(
            "P.all",
            &[("L1", 0.1), ("L2", 0.1), ("L3", 0.3), ("DRAM", 0.02)],
        ));
        series.push(StackedBar::new(
            "R.WB(32,32)",
            &[("L1", 0.1), ("L2", 0.08), ("L3", 0.15), ("DRAM", 0.03)],
        ));
        let csv = series.to_csv();
        assert!(csv.starts_with("group,policy,L1,L2,L3,DRAM,total"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("R.WB(32,32)"));
        let table = series.to_table();
        assert!(table.contains("P.all"));
        assert!(table.contains("0.5200") || table.contains("0.52"));
        assert_eq!(series.to_string(), table);
    }

    #[test]
    fn empty_series_renders_empty() {
        let series = NormalizedSeries::new("100 us");
        assert!(series.to_csv().is_empty());
        assert!(series.to_table().is_empty());
    }

    #[test]
    #[should_panic(expected = "share component names")]
    fn mismatched_components_panic() {
        let mut series = NormalizedSeries::new("g");
        series.push(StackedBar::new("a", &[("X", 1.0)]));
        series.push(StackedBar::new("b", &[("Y", 1.0)]));
        let _ = series.to_csv();
    }

    #[test]
    fn normalize_guards_zero_baseline() {
        assert_eq!(normalize(2.0, 4.0), 0.5);
        assert_eq!(normalize(2.0, 0.0), 0.0);
        assert_eq!(normalize(2.0, -1.0), 0.0);
    }
}
