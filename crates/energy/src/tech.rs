//! Technology parameters: access energies, leakage powers, cell technology.
//!
//! Absolute values are representative CACTI/McPAT-class numbers for a 32 nm
//! low-operating-power process at 330 K (the paper's Table 5.1 technology
//! point). Because every result in the paper is reported *normalised to the
//! full-SRAM baseline*, what matters is the set of ratios fixed by the
//! paper's Table 5.2, which this module encodes explicitly:
//!
//! * SRAM and eDRAM access time and access energy are equal,
//! * eDRAM leakage is one quarter of SRAM leakage,
//! * refreshing a line costs one line access worth of energy,
//! * a line is refreshed in one cycle (pipelined).

use std::fmt;

use refrint_engine::time::Freq;

/// The memory cell technology a cache hierarchy is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellTech {
    /// Conventional 6T SRAM: no refresh, full leakage.
    Sram,
    /// Embedded DRAM (1T-1C): quarter leakage, needs refresh.
    Edram,
}

impl CellTech {
    /// Whether this technology requires refresh.
    #[must_use]
    pub const fn needs_refresh(self) -> bool {
        matches!(self, CellTech::Edram)
    }
}

impl fmt::Display for CellTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellTech::Sram => write!(f, "SRAM"),
            CellTech::Edram => write!(f, "eDRAM"),
        }
    }
}

/// Energy parameters of one cache structure (one L1, one L2, or one L3 bank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEnergyParams {
    /// Energy of one line access (read or write), in nanojoules.
    pub access_energy_nj: f64,
    /// Leakage power of the whole structure when built from SRAM, in watts.
    pub sram_leakage_w: f64,
    /// eDRAM leakage as a fraction of SRAM leakage (Table 5.2: 1/4).
    pub edram_leakage_ratio: f64,
}

impl CacheEnergyParams {
    /// Leakage power for the given cell technology, in watts.
    #[must_use]
    pub fn leakage_w(&self, tech: CellTech) -> f64 {
        match tech {
            CellTech::Sram => self.sram_leakage_w,
            CellTech::Edram => self.sram_leakage_w * self.edram_leakage_ratio,
        }
    }

    /// Refresh energy of one line, in nanojoules (equal to an access,
    /// Table 5.2).
    #[must_use]
    pub fn refresh_energy_nj(&self) -> f64 {
        self.access_energy_nj
    }
}

/// The full technology parameter set used by the energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyParams {
    /// One private instruction L1 (32 KB).
    pub il1: CacheEnergyParams,
    /// One private data L1 (32 KB).
    pub dl1: CacheEnergyParams,
    /// One private L2 (256 KB).
    pub l2: CacheEnergyParams,
    /// One shared L3 bank (1 MB).
    pub l3_bank: CacheEnergyParams,
    /// Energy of one off-chip DRAM line transfer, in nanojoules.
    pub dram_access_energy_nj: f64,
    /// Core dynamic energy per committed instruction, in nanojoules.
    pub core_energy_per_instr_nj: f64,
    /// Leakage power of one core (logic, not caches), in watts.
    pub core_leakage_w: f64,
    /// Network energy per flit-hop, in nanojoules.
    pub noc_energy_per_flit_hop_nj: f64,
    /// Leakage power of one router and its links, in watts.
    pub noc_leakage_w_per_node: f64,
    /// Clock frequency in hertz (converts cycles to seconds for leakage
    /// energy). Stored as a plain integer so the parameter set serialises.
    pub clock_hz: u64,
}

impl TechnologyParams {
    /// The clock frequency as a typed [`Freq`].
    #[must_use]
    pub fn clock(&self) -> Freq {
        Freq::hertz(self.clock_hz)
    }
}

impl TechnologyParams {
    /// Representative 32 nm LOP, 330 K, 1 GHz parameter set.
    ///
    /// The absolute values are CACTI-class estimates chosen so that the
    /// full-SRAM baseline exhibits the composition the paper reports
    /// (L3 ≈ 60 % of on-chip memory energy and dominated by leakage, L1
    /// dominated by dynamic energy); all results are normalised to that
    /// baseline, as in the paper.
    #[must_use]
    pub fn paper_default() -> Self {
        TechnologyParams {
            il1: CacheEnergyParams {
                access_energy_nj: 0.020,
                sram_leakage_w: 0.004,
                edram_leakage_ratio: 0.25,
            },
            dl1: CacheEnergyParams {
                access_energy_nj: 0.025,
                sram_leakage_w: 0.005,
                edram_leakage_ratio: 0.25,
            },
            l2: CacheEnergyParams {
                access_energy_nj: 0.060,
                sram_leakage_w: 0.060,
                edram_leakage_ratio: 0.25,
            },
            l3_bank: CacheEnergyParams {
                access_energy_nj: 0.150,
                sram_leakage_w: 0.300,
                edram_leakage_ratio: 0.25,
            },
            dram_access_energy_nj: 3.0,
            core_energy_per_instr_nj: 0.030,
            core_leakage_w: 0.100,
            noc_energy_per_flit_hop_nj: 0.010,
            noc_leakage_w_per_node: 0.008,
            clock_hz: 1_000_000_000,
        }
    }

    /// Total SRAM leakage power of the on-chip memory hierarchy for a chip
    /// with `cores` tiles (each with IL1 + DL1 + L2) and `l3_banks` banks.
    #[must_use]
    pub fn total_sram_memory_leakage_w(&self, cores: usize, l3_banks: usize) -> f64 {
        (self.il1.sram_leakage_w + self.dl1.sram_leakage_w + self.l2.sram_leakage_w) * cores as f64
            + self.l3_bank.sram_leakage_w * l3_banks as f64
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edram_leaks_a_quarter_of_sram() {
        let p = TechnologyParams::paper_default();
        for c in [p.il1, p.dl1, p.l2, p.l3_bank] {
            assert!(
                (c.leakage_w(CellTech::Edram) - 0.25 * c.leakage_w(CellTech::Sram)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn refresh_energy_equals_access_energy() {
        let p = TechnologyParams::paper_default();
        assert_eq!(p.l3_bank.refresh_energy_nj(), p.l3_bank.access_energy_nj);
        assert_eq!(p.l2.refresh_energy_nj(), p.l2.access_energy_nj);
    }

    #[test]
    fn cell_tech_properties() {
        assert!(CellTech::Edram.needs_refresh());
        assert!(!CellTech::Sram.needs_refresh());
        assert_eq!(CellTech::Sram.to_string(), "SRAM");
        assert_eq!(CellTech::Edram.to_string(), "eDRAM");
    }

    #[test]
    fn l3_dominates_memory_leakage() {
        // The paper's observation that the L3 consumes the majority of the
        // on-chip memory energy hinges on its leakage dominating.
        let p = TechnologyParams::paper_default();
        let total = p.total_sram_memory_leakage_w(16, 16);
        let l3 = p.l3_bank.sram_leakage_w * 16.0;
        assert!(l3 / total > 0.5, "L3 share is {}", l3 / total);
        assert!(total > 0.0);
    }

    #[test]
    fn l1_access_energy_is_smallest() {
        let p = TechnologyParams::paper_default();
        assert!(p.il1.access_energy_nj < p.l2.access_energy_nj);
        assert!(p.l2.access_energy_nj < p.l3_bank.access_energy_nj);
        assert!(p.l3_bank.access_energy_nj < p.dram_access_energy_nj);
    }

    #[test]
    fn default_matches_paper_default() {
        assert_eq!(
            TechnologyParams::default(),
            TechnologyParams::paper_default()
        );
    }

    #[test]
    fn params_are_plain_copyable_values() {
        fn assert_value<T: Copy + Send + Sync + 'static>() {}
        assert_value::<TechnologyParams>();
        assert_value::<CacheEnergyParams>();
        assert_value::<CellTech>();
    }
}
