//! Technology parameters and energy accounting for the Refrint reproduction.
//!
//! The paper obtains timing/energy numbers from McPAT and CACTI and then
//! pins down the ratios that actually matter for the study in its Table 5.2:
//! SRAM and eDRAM have the same access time and access energy, eDRAM leaks a
//! quarter of what SRAM leaks, a refresh costs one line access, and a line
//! can be refreshed in a cycle. This crate encodes those relationships:
//!
//! * [`tech`] — per-structure access energies and leakage powers
//!   (representative CACTI-class values at 32 nm LOP, 330 K), the
//!   SRAM/eDRAM cell technology switch, and core / NoC / DRAM parameters.
//! * [`accounting`] — raw event counts gathered during simulation
//!   (accesses, refreshes, DRAM transactions, instructions, flit-hops,
//!   cycles).
//! * [`breakdown`] — turns counts + parameters into joules, split the two
//!   ways the paper reports them: by structure (L1/L2/L3/DRAM, Fig. 6.1) and
//!   by component (dynamic/leakage/refresh/DRAM, Fig. 6.2), plus total
//!   system energy (Fig. 6.3).
//! * [`report`] — normalisation against a baseline and text/CSV rendering of
//!   figure-shaped tables.
//!
//! # Example
//!
//! ```
//! use refrint_energy::tech::{CellTech, TechnologyParams};
//! use refrint_energy::accounting::EnergyCounts;
//! use refrint_energy::breakdown::EnergyBreakdown;
//!
//! let params = TechnologyParams::paper_default();
//! let mut counts = EnergyCounts::default();
//! counts.l3_accesses = 1_000_000;
//! counts.cycles = 2_000_000;
//! let sram = EnergyBreakdown::compute(&params, CellTech::Sram, &counts);
//! let edram = EnergyBreakdown::compute(&params, CellTech::Edram, &counts);
//! assert!(edram.on_chip_leakage() < sram.on_chip_leakage());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accounting;
pub mod breakdown;
pub mod error;
pub mod report;
pub mod tech;

pub use accounting::EnergyCounts;
pub use breakdown::EnergyBreakdown;
pub use error::EnergyError;
pub use report::{NormalizedSeries, StackedBar};
pub use tech::{CacheEnergyParams, CellTech, TechnologyParams};
