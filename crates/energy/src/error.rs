//! Error types for the energy model.

use std::error::Error;
use std::fmt;

/// Errors produced by the energy model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnergyError {
    /// A technology parameter was out of its physical range.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A normalisation was requested against a non-positive baseline.
    InvalidBaseline {
        /// The rejected baseline value.
        baseline: f64,
    },
}

impl fmt::Display for EnergyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyError::InvalidParameter { parameter, value } => {
                write!(f, "invalid energy parameter `{parameter}`: {value}")
            }
            EnergyError::InvalidBaseline { baseline } => {
                write!(
                    f,
                    "cannot normalise against non-positive baseline {baseline}"
                )
            }
        }
    }
}

impl Error for EnergyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EnergyError::InvalidParameter {
            parameter: "leakage",
            value: -1.0
        }
        .to_string()
        .contains("leakage"));
        assert!(EnergyError::InvalidBaseline { baseline: 0.0 }
            .to_string()
            .contains("baseline"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<EnergyError>();
    }
}
