//! Converting event counts into joules, split the ways the paper reports.

use crate::accounting::EnergyCounts;
use crate::tech::{CellTech, TechnologyParams};

const NJ: f64 = 1e-9;

/// The energy of one run, in joules, split by structure and by component.
///
/// Two views cover the paper's figures:
///
/// * Figure 6.1 stacks **L1 / L2 / L3 / DRAM** — see [`EnergyBreakdown::by_level`].
/// * Figure 6.2 stacks **dynamic / leakage / refresh / DRAM** — see
///   [`EnergyBreakdown::by_component`].
/// * Figure 6.3 adds cores and network — see [`EnergyBreakdown::total_system`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// L1 (instruction + data) dynamic energy.
    pub l1_dynamic: f64,
    /// L1 leakage energy.
    pub l1_leakage: f64,
    /// L1 refresh energy.
    pub l1_refresh: f64,
    /// L2 dynamic energy.
    pub l2_dynamic: f64,
    /// L2 leakage energy.
    pub l2_leakage: f64,
    /// L2 refresh energy.
    pub l2_refresh: f64,
    /// L3 dynamic energy.
    pub l3_dynamic: f64,
    /// L3 leakage energy.
    pub l3_leakage: f64,
    /// L3 refresh energy.
    pub l3_refresh: f64,
    /// Off-chip DRAM access energy.
    pub dram: f64,
    /// Core dynamic energy (instructions).
    pub core_dynamic: f64,
    /// Core leakage energy.
    pub core_leakage: f64,
    /// Network dynamic energy (flit-hops).
    pub noc_dynamic: f64,
    /// Network leakage energy.
    pub noc_leakage: f64,
}

impl EnergyBreakdown {
    /// Computes the breakdown for a run described by `counts`, with the
    /// on-chip caches built from `cells`, on a 16-core / 16-bank chip
    /// described by `params`.
    #[must_use]
    pub fn compute(params: &TechnologyParams, cells: CellTech, counts: &EnergyCounts) -> Self {
        Self::compute_for_chip(params, cells, counts, 16, 16)
    }

    /// Computes the breakdown for an arbitrary number of cores and L3 banks.
    #[must_use]
    pub fn compute_for_chip(
        params: &TechnologyParams,
        cells: CellTech,
        counts: &EnergyCounts,
        cores: usize,
        l3_banks: usize,
    ) -> Self {
        let seconds = params
            .clock()
            .duration_of(counts.cycles.into())
            .as_secs_f64();
        let cores_f = cores as f64;
        let banks_f = l3_banks as f64;

        let l1_dynamic = (counts.il1_accesses as f64 * params.il1.access_energy_nj
            + counts.dl1_accesses as f64 * params.dl1.access_energy_nj)
            * NJ;
        let l1_leakage =
            (params.il1.leakage_w(cells) + params.dl1.leakage_w(cells)) * cores_f * seconds;
        let l1_refresh = counts.l1_refreshes as f64
            * 0.5
            * (params.il1.refresh_energy_nj() + params.dl1.refresh_energy_nj())
            * NJ;

        let l2_dynamic = counts.l2_accesses as f64 * params.l2.access_energy_nj * NJ;
        let l2_leakage = params.l2.leakage_w(cells) * cores_f * seconds;
        let l2_refresh = counts.l2_refreshes as f64 * params.l2.refresh_energy_nj() * NJ;

        let l3_dynamic = counts.l3_accesses as f64 * params.l3_bank.access_energy_nj * NJ;
        let l3_leakage = params.l3_bank.leakage_w(cells) * banks_f * seconds;
        let l3_refresh = counts.l3_refreshes as f64 * params.l3_bank.refresh_energy_nj() * NJ;

        let dram = counts.dram_accesses() as f64 * params.dram_access_energy_nj * NJ;

        let core_dynamic = counts.instructions as f64 * params.core_energy_per_instr_nj * NJ;
        let core_leakage = params.core_leakage_w * cores_f * seconds;
        let noc_dynamic = counts.noc_flit_hops as f64 * params.noc_energy_per_flit_hop_nj * NJ;
        let noc_leakage = params.noc_leakage_w_per_node * cores_f * seconds;

        EnergyBreakdown {
            l1_dynamic,
            l1_leakage,
            l1_refresh,
            l2_dynamic,
            l2_leakage,
            l2_refresh,
            l3_dynamic,
            l3_leakage,
            l3_refresh,
            dram,
            core_dynamic,
            core_leakage,
            noc_dynamic,
            noc_leakage,
        }
    }

    /// Total L1 energy (dynamic + leakage + refresh).
    #[must_use]
    pub fn l1_total(&self) -> f64 {
        self.l1_dynamic + self.l1_leakage + self.l1_refresh
    }

    /// Total L2 energy.
    #[must_use]
    pub fn l2_total(&self) -> f64 {
        self.l2_dynamic + self.l2_leakage + self.l2_refresh
    }

    /// Total L3 energy.
    #[must_use]
    pub fn l3_total(&self) -> f64 {
        self.l3_dynamic + self.l3_leakage + self.l3_refresh
    }

    /// The memory-hierarchy energy the paper's Figures 6.1/6.2 report:
    /// L1 + L2 + L3 + DRAM.
    #[must_use]
    pub fn memory_total(&self) -> f64 {
        self.l1_total() + self.l2_total() + self.l3_total() + self.dram
    }

    /// On-chip dynamic energy of the memory hierarchy.
    #[must_use]
    pub fn on_chip_dynamic(&self) -> f64 {
        self.l1_dynamic + self.l2_dynamic + self.l3_dynamic
    }

    /// On-chip leakage energy of the memory hierarchy.
    #[must_use]
    pub fn on_chip_leakage(&self) -> f64 {
        self.l1_leakage + self.l2_leakage + self.l3_leakage
    }

    /// On-chip refresh energy of the memory hierarchy.
    #[must_use]
    pub fn refresh_total(&self) -> f64 {
        self.l1_refresh + self.l2_refresh + self.l3_refresh
    }

    /// Total system energy (cores, caches, network, DRAM) — Figure 6.3.
    #[must_use]
    pub fn total_system(&self) -> f64 {
        self.memory_total()
            + self.core_dynamic
            + self.core_leakage
            + self.noc_dynamic
            + self.noc_leakage
    }

    /// The Figure 6.1 stack: `[L1, L2, L3, DRAM]` energy in joules.
    #[must_use]
    pub fn by_level(&self) -> [(&'static str, f64); 4] {
        [
            ("L1", self.l1_total()),
            ("L2", self.l2_total()),
            ("L3", self.l3_total()),
            ("DRAM", self.dram),
        ]
    }

    /// The Figure 6.2 stack: `[dynamic, leakage, refresh, DRAM]` in joules.
    #[must_use]
    pub fn by_component(&self) -> [(&'static str, f64); 4] {
        [
            ("Dynamic", self.on_chip_dynamic()),
            ("Leakage", self.on_chip_leakage()),
            ("Refresh", self.refresh_total()),
            ("DRAM", self.dram),
        ]
    }

    /// Element-wise sum of two breakdowns (used to average application
    /// classes).
    #[must_use]
    pub fn plus(&self, o: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            l1_dynamic: self.l1_dynamic + o.l1_dynamic,
            l1_leakage: self.l1_leakage + o.l1_leakage,
            l1_refresh: self.l1_refresh + o.l1_refresh,
            l2_dynamic: self.l2_dynamic + o.l2_dynamic,
            l2_leakage: self.l2_leakage + o.l2_leakage,
            l2_refresh: self.l2_refresh + o.l2_refresh,
            l3_dynamic: self.l3_dynamic + o.l3_dynamic,
            l3_leakage: self.l3_leakage + o.l3_leakage,
            l3_refresh: self.l3_refresh + o.l3_refresh,
            dram: self.dram + o.dram,
            core_dynamic: self.core_dynamic + o.core_dynamic,
            core_leakage: self.core_leakage + o.core_leakage,
            noc_dynamic: self.noc_dynamic + o.noc_dynamic,
            noc_leakage: self.noc_leakage + o.noc_leakage,
        }
    }

    /// Element-wise scaling (used to average application classes).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            l1_dynamic: self.l1_dynamic * factor,
            l1_leakage: self.l1_leakage * factor,
            l1_refresh: self.l1_refresh * factor,
            l2_dynamic: self.l2_dynamic * factor,
            l2_leakage: self.l2_leakage * factor,
            l2_refresh: self.l2_refresh * factor,
            l3_dynamic: self.l3_dynamic * factor,
            l3_leakage: self.l3_leakage * factor,
            l3_refresh: self.l3_refresh * factor,
            dram: self.dram * factor,
            core_dynamic: self.core_dynamic * factor,
            core_leakage: self.core_leakage * factor,
            noc_dynamic: self.noc_dynamic * factor,
            noc_leakage: self.noc_leakage * factor,
        }
    }

    /// Whether every field is finite and non-negative (invariant used by
    /// property tests).
    #[must_use]
    pub fn is_physical(&self) -> bool {
        let fields = [
            self.l1_dynamic,
            self.l1_leakage,
            self.l1_refresh,
            self.l2_dynamic,
            self.l2_leakage,
            self.l2_refresh,
            self.l3_dynamic,
            self.l3_leakage,
            self.l3_refresh,
            self.dram,
            self.core_dynamic,
            self.core_leakage,
            self.noc_dynamic,
            self.noc_leakage,
        ];
        fields.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> EnergyCounts {
        EnergyCounts {
            instructions: 32_000_000,
            cycles: 2_000_000,
            il1_accesses: 32_000_000,
            dl1_accesses: 10_000_000,
            l2_accesses: 4_000_000,
            l3_accesses: 600_000,
            l1_refreshes: 500_000,
            l2_refreshes: 2_000_000,
            l3_refreshes: 10_000_000,
            dram_reads: 50_000,
            dram_writes: 20_000,
            noc_flit_hops: 5_000_000,
        }
    }

    #[test]
    fn sram_ignores_refresh_only_through_counts() {
        // The breakdown itself charges refresh from the counts; an SRAM run
        // simply never accrues refresh counts. With identical counts, the only
        // difference between SRAM and eDRAM is leakage.
        let params = TechnologyParams::paper_default();
        let counts = sample_counts();
        let sram = EnergyBreakdown::compute(&params, CellTech::Sram, &counts);
        let edram = EnergyBreakdown::compute(&params, CellTech::Edram, &counts);
        assert!((sram.on_chip_dynamic() - edram.on_chip_dynamic()).abs() < 1e-15);
        assert!((sram.refresh_total() - edram.refresh_total()).abs() < 1e-15);
        assert!((edram.on_chip_leakage() - sram.on_chip_leakage() * 0.25).abs() < 1e-12);
    }

    #[test]
    fn totals_are_consistent() {
        let params = TechnologyParams::paper_default();
        let counts = sample_counts();
        let b = EnergyBreakdown::compute(&params, CellTech::Edram, &counts);
        let by_level: f64 = b.by_level().iter().map(|(_, v)| v).sum();
        let by_component: f64 = b.by_component().iter().map(|(_, v)| v).sum();
        assert!((by_level - b.memory_total()).abs() < 1e-12);
        assert!((by_component - b.memory_total()).abs() < 1e-12);
        assert!(b.total_system() > b.memory_total());
        assert!(b.is_physical());
    }

    #[test]
    fn l3_leakage_dominates_sram_memory_energy() {
        let params = TechnologyParams::paper_default();
        let counts = sample_counts();
        let b = EnergyBreakdown::compute(&params, CellTech::Sram, &counts);
        // Paper: L3 is ~60% of the on-chip memory energy; L1 is ~90% dynamic.
        let l3_share = b.l3_total() / b.memory_total();
        assert!(l3_share > 0.45 && l3_share < 0.8, "L3 share {l3_share}");
        let l1_dynamic_share = b.l1_dynamic / b.l1_total();
        assert!(
            l1_dynamic_share > 0.7,
            "L1 dynamic share {l1_dynamic_share}"
        );
    }

    #[test]
    fn leakage_scales_with_cycles() {
        let params = TechnologyParams::paper_default();
        let mut counts = sample_counts();
        let short = EnergyBreakdown::compute(&params, CellTech::Sram, &counts);
        counts.cycles *= 2;
        let long = EnergyBreakdown::compute(&params, CellTech::Sram, &counts);
        assert!((long.on_chip_leakage() - 2.0 * short.on_chip_leakage()).abs() < 1e-12);
        assert!((long.on_chip_dynamic() - short.on_chip_dynamic()).abs() < 1e-15);
    }

    #[test]
    fn plus_and_scaled_compose() {
        let params = TechnologyParams::paper_default();
        let counts = sample_counts();
        let b = EnergyBreakdown::compute(&params, CellTech::Edram, &counts);
        let doubled = b.plus(&b);
        let halved_back = doubled.scaled(0.5);
        assert!((halved_back.total_system() - b.total_system()).abs() < 1e-12);
        assert!(doubled.is_physical());
        assert!(!b.scaled(-1.0).is_physical());
    }

    #[test]
    fn zero_counts_give_zero_dynamic_energy() {
        let params = TechnologyParams::paper_default();
        let b = EnergyBreakdown::compute(&params, CellTech::Sram, &EnergyCounts::default());
        assert_eq!(b.on_chip_dynamic(), 0.0);
        assert_eq!(b.dram, 0.0);
        assert_eq!(b.on_chip_leakage(), 0.0, "zero cycles means zero leakage");
    }
}
