//! `gen-figures`: regenerate every table and figure of the paper's
//! evaluation section from the configuration sweep.
//!
//! Usage:
//!
//! ```text
//! gen-figures [--scale smoke|default|long] [--apps fft,lu,...] \
//!             [--figure 6.1|6.2|6.3|6.4] [--table 6.1] [--csv]
//! ```
//!
//! With no `--figure`/`--table` argument every artefact is produced. The
//! output is plain text (or CSV with `--csv`) so it can be diffed against
//! `EXPERIMENTS.md`.

use std::process::ExitCode;

use refrint_bench::{
    experiment, headline, render_figure_6_1, render_figure_6_2, render_figure_6_3,
    render_figure_6_4, render_table_6_1, sweep, Scale,
};
use refrint_workloads::apps::AppPreset;

#[derive(Debug)]
struct Options {
    scale: Scale,
    apps: Option<Vec<AppPreset>>,
    artefacts: Vec<String>,
    csv: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: Scale::Default,
        apps: None,
        artefacts: Vec::new(),
        csv: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = match v.as_str() {
                    "smoke" => Scale::Smoke,
                    "default" => Scale::Default,
                    "long" => Scale::Long,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--apps" => {
                let v = args.next().ok_or("--apps needs a value")?;
                let mut apps = Vec::new();
                for name in v.split(',') {
                    apps.push(name.parse::<AppPreset>().map_err(|e| format!("{e}"))?);
                }
                opts.apps = Some(apps);
            }
            "--figure" | "--table" => {
                let v = args.next().ok_or("--figure/--table needs a value")?;
                opts.artefacts.push(v);
            }
            "--csv" => opts.csv = true,
            "--help" | "-h" => {
                println!(
                    "gen-figures [--scale smoke|default|long] [--apps a,b,c] \
                     [--figure 6.1|6.2|6.3|6.4] [--table 6.1] [--csv]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn wanted(opts: &Options, id: &str) -> bool {
    opts.artefacts.is_empty() || opts.artefacts.iter().any(|a| a == id)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gen-figures: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cfg = experiment(opts.scale, opts.apps.clone());
    eprintln!(
        "gen-figures: running {} simulations ({} refs/thread) ...",
        cfg.total_runs(),
        cfg.refs_per_thread
    );
    let results = sweep(&cfg);

    if wanted(&opts, "6.1") && opts.artefacts.iter().all(|a| a != "6.1-table") {
        println!("== Table 6.1: application binning ==");
        for line in render_table_6_1(&results) {
            println!("{line}");
        }
        println!();
    }

    if wanted(&opts, "6.1") {
        println!(
            "== Figure 6.1: L1, L2, L3 & DRAM energy (normalised to full-SRAM memory energy) =="
        );
        for series in render_figure_6_1(&results) {
            print!(
                "{}",
                if opts.csv {
                    series.to_csv()
                } else {
                    series.to_table()
                }
            );
        }
        println!();
    }

    if wanted(&opts, "6.2") {
        println!("== Figure 6.2: dynamic, leakage, refresh & DRAM energy (normalised) ==");
        for (label, group) in render_figure_6_2(&results) {
            println!("-- {label} --");
            for series in group {
                print!(
                    "{}",
                    if opts.csv {
                        series.to_csv()
                    } else {
                        series.to_table()
                    }
                );
            }
        }
        println!();
    }

    if wanted(&opts, "6.3") {
        println!("== Figure 6.3: total energy (normalised to full-SRAM system energy) ==");
        for (label, group) in render_figure_6_3(&results) {
            println!("-- {label} --");
            for series in group {
                print!(
                    "{}",
                    if opts.csv {
                        series.to_csv()
                    } else {
                        series.to_table()
                    }
                );
            }
        }
        println!();
    }

    if wanted(&opts, "6.4") {
        println!("== Figure 6.4: execution time (normalised to full-SRAM execution time) ==");
        for (label, group) in render_figure_6_4(&results) {
            println!("-- {label} --");
            for series in group {
                print!(
                    "{}",
                    if opts.csv {
                        series.to_csv()
                    } else {
                        series.to_table()
                    }
                );
            }
        }
        println!();
    }

    if let Some(h) = headline(&results) {
        println!("== Headline (50 us, averaged over all applications) ==");
        println!(
            "Periodic All     : memory {:.2}, system {:.2}, slowdown {:.2}",
            h.baseline_memory_energy, h.baseline_system_energy, h.baseline_slowdown
        );
        println!(
            "Refrint WB(32,32): memory {:.2}, system {:.2}, slowdown {:.2}",
            h.refrint_memory_energy, h.refrint_system_energy, h.refrint_slowdown
        );
        println!(
            "(paper: 0.50 / 0.72 / 1.18 for Periodic All; 0.36 / 0.61 / 1.02 for Refrint WB(32,32))"
        );
    }
    ExitCode::SUCCESS
}
