//! `perfgate` — record and gate simulator-throughput baselines.
//!
//! Subcommands (flag-style, consistent with `refrint-cli`):
//!
//! * `perfgate --record [FILE]` — run the `sim_throughput` suite and write
//!   the results document (default `BENCH_SIM.json`).
//! * `perfgate --check FILE` — re-run the suite at the baseline's recorded
//!   mode and fail (exit 1) if any metric's refs/sec drops more than the
//!   tolerance below the baseline, or if the deterministic simulated-cycle
//!   counts diverge at all.
//! * `perfgate --compare OLD NEW` — diff two recorded documents without
//!   running anything; `--min-ratio NAME=R` additionally enforces a minimum
//!   speedup for one metric.
//!
//! `refs_per_sec` is wall-clock and machine-dependent, hence the tolerance
//! (`--tolerance 0.25` = fail below 75% of baseline). `execution_cycles` is
//! the simulated clock: identical on every machine, so any difference means
//! the simulation's semantics changed and the gate fails hard.
//!
//! `--check --format json` prints a machine-readable verdict document to
//! stdout (per-scenario pass/fail and ratios) instead of the table; the
//! exit code is unchanged, so CI can both gate on it and parse the log.

use std::process::ExitCode;

use refrint_bench::results::{self, ResultsDoc};
use refrint_bench::throughput::{self, Effort, Measurement};
use refrint_cli::{has_flag, opt_value};
use refrint_engine::json::{escape, num};

const DEFAULT_FILE: &str = "BENCH_SIM.json";
const DEFAULT_TOLERANCE: f64 = 0.10;

fn usage() -> &'static str {
    "usage:\n  \
     perfgate --record [FILE] [--mode quick|full]\n  \
     perfgate --check FILE [--tolerance FRAC] [--mode quick|full] [--against RESULTS]\n  \
     \x20              [--format text|json]\n  \
     perfgate --compare OLD NEW [--min-ratio NAME=R]\n"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if has_flag(&args, "--record") {
        record(&args)
    } else if has_flag(&args, "--check") {
        check(&args)
    } else if has_flag(&args, "--compare") {
        compare(&args)
    } else {
        Err(usage().to_owned())
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("perfgate: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The positional value after `flag` (the next argument not starting
/// with `--`).
fn positional_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

fn parse_mode(args: &[String]) -> Result<Option<Effort>, String> {
    match opt_value(args, "--mode") {
        None => Ok(None),
        Some(m) => Effort::parse(&m)
            .map(Some)
            .ok_or_else(|| format!("unknown --mode '{m}' (expected quick or full)")),
    }
}

fn record(args: &[String]) -> Result<(), String> {
    let file = positional_after(args, "--record").unwrap_or_else(|| DEFAULT_FILE.to_owned());
    let effort = parse_mode(args)?.unwrap_or(Effort::Quick);
    let doc = ResultsDoc {
        mode: effort.label().to_owned(),
        metrics: throughput::run_suite(effort),
    };
    std::fs::write(&file, results::render(&doc))
        .map_err(|e| format!("cannot write {file}: {e}"))?;
    println!(
        "recorded {} metrics to {file} (mode: {})",
        doc.metrics.len(),
        doc.mode
    );
    Ok(())
}

fn load(file: &str) -> Result<ResultsDoc, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    results::parse(&text).map_err(|e| format!("{file}: {e}"))
}

/// One scenario's verdict in a `--check` run.
struct ScenarioVerdict {
    name: String,
    baseline_refs_per_sec: f64,
    current_refs_per_sec: f64,
    ratio: f64,
    rate_ok: bool,
    cycles_ok: bool,
}

impl ScenarioVerdict {
    fn pass(&self) -> bool {
        self.rate_ok && self.cycles_ok
    }
}

/// The exact command that re-records `file` as the new baseline — echoed
/// on every failing check so CI failures are self-explanatory.
fn rebaseline_command(file: &str, mode: &str) -> String {
    format!("cargo run --release -p refrint-bench --bin perfgate -- --record {file} --mode {mode}")
}

/// Renders the machine-readable `--check` verdict document.
fn render_verdict_json(
    mode: &str,
    tolerance: f64,
    verdicts: &[ScenarioVerdict],
    failures: &[String],
    rebaseline: &str,
) -> String {
    let scenarios: Vec<String> = verdicts
        .iter()
        .map(|v| {
            format!(
                "    {{\"name\": \"{}\", \"baseline_refs_per_sec\": {}, \
                 \"current_refs_per_sec\": {}, \"ratio\": {}, \
                 \"rate_ok\": {}, \"cycles_ok\": {}, \"pass\": {}}}",
                escape(&v.name),
                num(v.baseline_refs_per_sec),
                num(v.current_refs_per_sec),
                num(v.ratio),
                v.rate_ok,
                v.cycles_ok,
                v.pass()
            )
        })
        .collect();
    let failure_items: Vec<String> = failures
        .iter()
        .map(|f| format!("\"{}\"", escape(f)))
        .collect();
    format!(
        "{{\n  \"suite\": \"sim_throughput\",\n  \"mode\": \"{}\",\n  \
         \"tolerance\": {},\n  \"verdict\": \"{}\",\n  \"scenarios\": [\n{}\n  ],\n  \
         \"failures\": [{}],\n  \"rebaseline_command\": \"{}\"\n}}",
        escape(mode),
        num(tolerance),
        if failures.is_empty() { "pass" } else { "fail" },
        scenarios.join(",\n"),
        failure_items.join(", "),
        escape(rebaseline)
    )
}

fn check(args: &[String]) -> Result<(), String> {
    let file = positional_after(args, "--check").unwrap_or_else(|| DEFAULT_FILE.to_owned());
    let json_output = match opt_value(args, "--format").as_deref() {
        None | Some("text") => false,
        Some("json") => true,
        Some(other) => {
            return Err(format!(
                "unknown --format `{other}` (expected `text` or `json`)"
            ))
        }
    };
    let tolerance = match opt_value(args, "--tolerance") {
        None => DEFAULT_TOLERANCE,
        Some(t) => t
            .parse::<f64>()
            .ok()
            .filter(|t| (0.0..1.0).contains(t))
            .ok_or_else(|| format!("--tolerance must be a fraction in [0, 1), got '{t}'"))?,
    };
    let baseline = load(&file)?;
    let baseline_effort = Effort::parse(&baseline.mode)
        .ok_or_else(|| format!("{file}: unknown recorded mode '{}'", baseline.mode))?;

    // `--against RESULTS` gates a previously recorded run offline instead
    // of re-running the suite (CI records once for the artifact, then
    // checks that same document). Modes must match so the exact
    // simulated-cycle comparison stays meaningful.
    let (current, same_mode) = match opt_value(args, "--against") {
        Some(results_file) => {
            let recorded = load(&results_file)?;
            if recorded.mode != baseline.mode {
                return Err(format!(
                    "{results_file} was recorded in {} mode but {file} is a {} baseline; \
                     record with --mode {} to gate against it",
                    recorded.mode, baseline.mode, baseline.mode
                ));
            }
            (recorded.metrics, true)
        }
        None => {
            let effort = parse_mode(args)?.unwrap_or(baseline_effort);
            let same_mode = effort == baseline_effort;
            if !same_mode {
                eprintln!(
                    "perfgate: checking in {} mode against a {} baseline — \
                     exact cycle comparison skipped",
                    effort.label(),
                    baseline.mode
                );
            }
            (throughput::run_suite(effort), same_mode)
        }
    };
    let mut failures = Vec::new();
    let mut verdicts = Vec::new();
    if !json_output {
        println!(
            "{:<16} {:>14} {:>14} {:>8}  verdict (tolerance {:.0}%)",
            "metric",
            "baseline r/s",
            "current r/s",
            "delta",
            tolerance * 100.0
        );
    }
    for base in &baseline.metrics {
        let Some(cur) = current.iter().find(|m| m.name == base.name) else {
            failures.push(format!("metric '{}' missing from current suite", base.name));
            verdicts.push(ScenarioVerdict {
                name: base.name.clone(),
                baseline_refs_per_sec: base.refs_per_sec,
                current_refs_per_sec: 0.0,
                ratio: 0.0,
                rate_ok: false,
                cycles_ok: false,
            });
            continue;
        };
        let ratio = cur.refs_per_sec / base.refs_per_sec;
        let ok_rate = ratio >= 1.0 - tolerance;
        let ok_cycles = !same_mode || cur.execution_cycles == base.execution_cycles;
        if !json_output {
            println!(
                "{:<16} {:>14.0} {:>14.0} {:>+7.1}%  {}",
                base.name,
                base.refs_per_sec,
                cur.refs_per_sec,
                (ratio - 1.0) * 100.0,
                if ok_rate && ok_cycles { "ok" } else { "FAIL" }
            );
        }
        if !ok_rate {
            failures.push(format!(
                "'{}' throughput regressed to {:.0}% of baseline ({:.0} vs {:.0} refs/sec)",
                base.name,
                ratio * 100.0,
                cur.refs_per_sec,
                base.refs_per_sec
            ));
        }
        if !ok_cycles {
            failures.push(format!(
                "'{}' simulated cycles changed: baseline {} vs current {} — \
                 the simulation's semantics changed; re-record intentionally with --record",
                base.name, base.execution_cycles, cur.execution_cycles
            ));
        }
        verdicts.push(ScenarioVerdict {
            name: base.name.clone(),
            baseline_refs_per_sec: base.refs_per_sec,
            current_refs_per_sec: cur.refs_per_sec,
            ratio,
            rate_ok: ok_rate,
            cycles_ok: ok_cycles,
        });
    }
    let rebaseline = rebaseline_command(&file, &baseline.mode);
    if json_output {
        println!(
            "{}",
            render_verdict_json(&baseline.mode, tolerance, &verdicts, &failures, &rebaseline)
        );
        if failures.is_empty() {
            Ok(())
        } else {
            // The document above already carries the details; keep stderr
            // to a one-liner so logs stay parseable.
            Err(format!("{} scenario check(s) failed", failures.len()))
        }
    } else if failures.is_empty() {
        println!(
            "perfgate: all {} metrics within tolerance",
            baseline.metrics.len()
        );
        Ok(())
    } else {
        Err(format!(
            "{}\nto accept the current results as the new baseline, run:\n  {rebaseline}",
            failures.join("\n")
        ))
    }
}

fn compare(args: &[String]) -> Result<(), String> {
    let old_file = positional_after(args, "--compare")
        .ok_or_else(|| format!("--compare needs two files\n{}", usage()))?;
    let new_file = {
        let idx = args
            .iter()
            .position(|a| a == &old_file)
            .expect("positional value exists");
        args.get(idx + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .ok_or_else(|| format!("--compare needs two files\n{}", usage()))?
    };
    let old = load(&old_file)?;
    let new = load(&new_file)?;

    println!(
        "{:<16} {:>14} {:>14} {:>8}",
        "metric", "old r/s", "new r/s", "ratio"
    );
    for o in &old.metrics {
        if let Some(n) = new.metrics.iter().find(|m| m.name == o.name) {
            println!(
                "{:<16} {:>14.0} {:>14.0} {:>7.2}x",
                o.name,
                o.refs_per_sec,
                n.refs_per_sec,
                n.refs_per_sec / o.refs_per_sec
            );
        }
    }

    if let Some(spec) = opt_value(args, "--min-ratio") {
        let (name, min) = spec
            .split_once('=')
            .and_then(|(n, r)| r.parse::<f64>().ok().map(|r| (n.to_owned(), r)))
            .ok_or_else(|| format!("--min-ratio expects NAME=R, got '{spec}'"))?;
        let o = find_metric(&old, &name, &old_file)?;
        let n = find_metric(&new, &name, &new_file)?;
        let ratio = n.refs_per_sec / o.refs_per_sec;
        if ratio < min {
            return Err(format!(
                "'{name}' speedup {ratio:.2}x is below the required {min:.2}x"
            ));
        }
        println!("'{name}' speedup {ratio:.2}x meets the required {min:.2}x");
    }
    Ok(())
}

fn find_metric<'a>(doc: &'a ResultsDoc, name: &str, file: &str) -> Result<&'a Measurement, String> {
    doc.metrics
        .iter()
        .find(|m| m.name == name)
        .ok_or_else(|| format!("{file}: no metric named '{name}'"))
}
