//! Shared harness for the Refrint benchmark suite.
//!
//! The Criterion benches and the `gen-figures` binary both need the same
//! thing: run the paper's configuration sweep (Table 5.4) at a chosen scale
//! and feed the results to the figure generators in `refrint::figures`.
//! This crate provides those shared entry points so that every table and
//! figure of the paper has exactly one implementation of its data pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use refrint::experiment::{run_sweep, ExperimentConfig, SweepResults};
use refrint::figures::{self, AppSelection, HeadlineSummary};
use refrint_energy::report::NormalizedSeries;
use refrint_workloads::apps::AppPreset;
use refrint_workloads::classify::AppClass;

pub mod results;
pub mod throughput;

/// The shared JSON implementation (escaping, rendering helpers, the
/// typed-error parser), re-exported so bench consumers keep one import
/// path after its extraction into `refrint-engine`.
pub use refrint_engine::json;

/// How large a sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand references per thread: seconds, for Criterion benches
    /// and CI. Covers several 50 µs retention periods but not enough idle
    /// time for the largest WB budgets to expire.
    Smoke,
    /// The default for `gen-figures`: tens of thousands of references per
    /// thread (minutes for the full sweep).
    Default,
    /// A long run that lets even WB(32,32) budgets expire at 50 µs.
    Long,
}

impl Scale {
    /// References per thread for this scale.
    #[must_use]
    pub fn refs_per_thread(self) -> u64 {
        match self {
            Scale::Smoke => 2_500,
            Scale::Default => 60_000,
            Scale::Long => 400_000,
        }
    }
}

/// Builds the experiment configuration for a scale, optionally restricted to
/// a subset of applications.
#[must_use]
pub fn experiment(scale: Scale, apps: Option<Vec<AppPreset>>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_full().with_refs_per_thread(scale.refs_per_thread());
    if let Some(apps) = apps {
        cfg = cfg.with_apps(apps);
    }
    cfg
}

/// Runs the sweep for `cfg`, panicking on configuration errors (the bench
/// harness only ever uses the paper's valid configurations).
#[must_use]
pub fn sweep(cfg: &ExperimentConfig) -> SweepResults {
    run_sweep(cfg).expect("paper sweep configurations are valid")
}

/// One representative application per class — used by the smoke-scale
/// benches so each figure still exercises all three classes.
#[must_use]
pub fn representative_apps() -> Vec<AppPreset> {
    vec![AppPreset::Fft, AppPreset::Lu, AppPreset::Blackscholes]
}

/// Renders Figure 6.1 from sweep results.
#[must_use]
pub fn render_figure_6_1(results: &SweepResults) -> Vec<NormalizedSeries> {
    figures::figure_6_1(results)
}

/// Renders Figure 6.2 for every selection the paper plots (class 1/2/3, all).
#[must_use]
pub fn render_figure_6_2(results: &SweepResults) -> Vec<(String, Vec<NormalizedSeries>)> {
    let mut out = Vec::new();
    for class in AppClass::ALL {
        out.push((
            class.label().to_owned(),
            figures::figure_6_2(results, AppSelection::Class(class)),
        ));
    }
    out.push((
        "all".to_owned(),
        figures::figure_6_2(results, AppSelection::All),
    ));
    out
}

/// Renders Figure 6.3 for the selections the paper plots (class 1, all).
#[must_use]
pub fn render_figure_6_3(results: &SweepResults) -> Vec<(String, Vec<NormalizedSeries>)> {
    vec![
        (
            "class1".to_owned(),
            figures::figure_6_3(results, AppSelection::Class(AppClass::Class1)),
        ),
        (
            "all".to_owned(),
            figures::figure_6_3(results, AppSelection::All),
        ),
    ]
}

/// Renders Figure 6.4 for the selections the paper plots (class 1, all).
#[must_use]
pub fn render_figure_6_4(results: &SweepResults) -> Vec<(String, Vec<NormalizedSeries>)> {
    vec![
        (
            "class1".to_owned(),
            figures::figure_6_4(results, AppSelection::Class(AppClass::Class1)),
        ),
        (
            "all".to_owned(),
            figures::figure_6_4(results, AppSelection::All),
        ),
    ]
}

/// Renders Table 6.1 as display lines.
#[must_use]
pub fn render_table_6_1(results: &SweepResults) -> Vec<String> {
    figures::table_6_1(results)
        .iter()
        .map(|r| r.to_string())
        .collect()
}

/// The headline summary (abstract / conclusions numbers) at 50 µs.
#[must_use]
pub fn headline(results: &SweepResults) -> Option<HeadlineSummary> {
    figures::headline_summary(results, 50)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.refs_per_thread() < Scale::Default.refs_per_thread());
        assert!(Scale::Default.refs_per_thread() < Scale::Long.refs_per_thread());
    }

    #[test]
    fn experiment_builder_restricts_apps() {
        let cfg = experiment(Scale::Smoke, Some(representative_apps()));
        assert_eq!(cfg.apps.len(), 3);
        assert_eq!(cfg.refs_per_thread, Scale::Smoke.refs_per_thread());
        let full = experiment(Scale::Smoke, None);
        assert_eq!(full.apps.len(), 11);
    }

    #[test]
    fn representative_apps_cover_all_classes() {
        let apps = representative_apps();
        let classes: std::collections::BTreeSet<_> = apps.iter().map(|a| a.paper_class()).collect();
        assert_eq!(classes.len(), 3);
    }
}
