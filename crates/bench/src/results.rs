//! Reading and writing `BENCH_SIM.json` result documents.
//!
//! The workspace builds offline (no serde), so this module hand-emits the
//! document via the CLI's escaping helpers and reads it back with a small
//! recursive-descent JSON parser — enough of RFC 8259 for the documents the
//! suite writes, with typed errors on malformed input.

use std::fmt;

use refrint_cli::json::escape;

use crate::throughput::Measurement;

/// A recorded results document: suite mode plus one entry per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsDoc {
    /// Effort label the results were recorded at (`quick` / `full`).
    pub mode: String,
    /// One entry per scenario, in suite order.
    pub metrics: Vec<Measurement>,
}

/// Renders a results document as pretty-printed JSON.
#[must_use]
pub fn render(doc: &ResultsDoc) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"suite\": \"sim_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", escape(&doc.mode)));
    out.push_str("  \"metrics\": [\n");
    for (i, m) in doc.metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"refs\": {}, \"refs_per_sec\": {:.1}, \"execution_cycles\": {}}}{}\n",
            escape(&m.name),
            m.refs,
            m.refs_per_sec,
            m.execution_cycles,
            if i + 1 < doc.metrics.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Why a results document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The JSON text itself is malformed.
    Syntax {
        /// Byte offset of the offending input.
        offset: usize,
        /// What went wrong.
        reason: String,
    },
    /// The JSON is valid but not a results document.
    Schema(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { offset, reason } => {
                write!(f, "malformed JSON at byte {offset}: {reason}")
            }
            ParseError::Schema(reason) => write!(f, "not a sim_throughput document: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON value (only what the results schema needs).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::Syntax {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected byte {:#04x}", c)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected '{text}'"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::Syntax {
                offset: start,
                reason: "non-UTF-8 number".to_owned(),
            })?
            .to_owned();
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => {
                self.pos = start;
                self.err(format!("invalid number '{text}'"))
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        ParseError::Syntax {
                            offset: self.pos,
                            reason: "non-UTF-8 string".to_owned(),
                        }
                    })?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a results document.
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] for malformed JSON and
/// [`ParseError::Schema`] for valid JSON that is not a `sim_throughput`
/// document.
pub fn parse(text: &str) -> Result<ResultsDoc, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }

    let suite = root
        .get("suite")
        .and_then(Value::as_str)
        .ok_or_else(|| ParseError::Schema("missing \"suite\"".to_owned()))?;
    if suite != "sim_throughput" {
        return Err(ParseError::Schema(format!("unknown suite \"{suite}\"")));
    }
    let mode = root
        .get("mode")
        .and_then(Value::as_str)
        .ok_or_else(|| ParseError::Schema("missing \"mode\"".to_owned()))?
        .to_owned();
    let metrics = match root.get("metrics") {
        Some(Value::Arr(items)) => items,
        _ => return Err(ParseError::Schema("missing \"metrics\" array".to_owned())),
    };
    let mut out = Vec::with_capacity(metrics.len());
    for (i, item) in metrics.iter().enumerate() {
        let field = |key: &str| {
            item.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| ParseError::Schema(format!("metric {i}: missing \"{key}\"")))
        };
        let name = item
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ParseError::Schema(format!("metric {i}: missing \"name\"")))?
            .to_owned();
        out.push(Measurement {
            name,
            refs: field("refs")? as u64,
            refs_per_sec: field("refs_per_sec")?,
            execution_cycles: field("execution_cycles")? as u64,
        });
    }
    Ok(ResultsDoc { mode, metrics: out })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> ResultsDoc {
        ResultsDoc {
            mode: "quick".to_owned(),
            metrics: vec![
                Measurement {
                    name: "lu".to_owned(),
                    refs: 32_000,
                    refs_per_sec: 123_456.5,
                    execution_cycles: 987_654,
                },
                Measurement {
                    name: "fft".to_owned(),
                    refs: 32_000,
                    refs_per_sec: 98_765.5,
                    execution_cycles: 123,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let d = doc();
        let text = render(&d);
        let back = parse(&text).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn malformed_json_reports_offset() {
        let err = parse("{\"suite\": ").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }), "{err}");
        let err = parse("{}extra").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn wrong_schema_is_a_schema_error() {
        assert!(matches!(parse("{}"), Err(ParseError::Schema(_))));
        let err = parse("{\"suite\": \"other\", \"mode\": \"quick\", \"metrics\": []}");
        assert!(matches!(err, Err(ParseError::Schema(_))));
        let err = parse(
            "{\"suite\": \"sim_throughput\", \"mode\": \"quick\", \
             \"metrics\": [{\"name\": \"lu\"}]}",
        );
        assert!(err.unwrap_err().to_string().contains("refs"));
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let text = "{\"suite\": \"sim_throughput\", \"mode\": \"a\\\"b\\u0041\", \
                    \"metrics\": [{\"name\": \"x\", \"refs\": 1e3, \
                    \"refs_per_sec\": -2.5, \"execution_cycles\": 7}]}";
        let d = parse(text).unwrap();
        assert_eq!(d.mode, "a\"bA");
        assert_eq!(d.metrics[0].refs, 1000);
        assert_eq!(d.metrics[0].refs_per_sec, -2.5);
    }
}
