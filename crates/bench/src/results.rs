//! Reading and writing `BENCH_SIM.json` result documents.
//!
//! The document grammar (schema) lives here; the JSON mechanics — escaping,
//! rendering, the typed-error parser — are the shared
//! [`refrint_engine::json`] module (re-exported as [`crate::json`]), so the
//! bench suite, the CLI and `refrint-serve` all speak through one
//! implementation.

use std::fmt;

use refrint_engine::json::{escape, JsonError, Value};

use crate::throughput::Measurement;

/// A recorded results document: suite mode plus one entry per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsDoc {
    /// Effort label the results were recorded at (`quick` / `full`).
    pub mode: String,
    /// One entry per scenario, in suite order.
    pub metrics: Vec<Measurement>,
}

/// Renders a results document as pretty-printed JSON.
#[must_use]
pub fn render(doc: &ResultsDoc) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"suite\": \"sim_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", escape(&doc.mode)));
    out.push_str("  \"metrics\": [\n");
    for (i, m) in doc.metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"refs\": {}, \"refs_per_sec\": {:.1}, \"execution_cycles\": {}}}{}\n",
            escape(&m.name),
            m.refs,
            m.refs_per_sec,
            m.execution_cycles,
            if i + 1 < doc.metrics.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Why a results document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The JSON text itself is malformed.
    Syntax {
        /// Byte offset of the offending input.
        offset: usize,
        /// What went wrong.
        reason: String,
    },
    /// The JSON is valid but not a results document.
    Schema(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { offset, reason } => {
                write!(f, "malformed JSON at byte {offset}: {reason}")
            }
            ParseError::Schema(reason) => write!(f, "not a sim_throughput document: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<JsonError> for ParseError {
    fn from(err: JsonError) -> Self {
        ParseError::Syntax {
            offset: err.offset,
            reason: err.reason,
        }
    }
}

/// Parses a results document.
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] for malformed JSON and
/// [`ParseError::Schema`] for valid JSON that is not a `sim_throughput`
/// document.
pub fn parse(text: &str) -> Result<ResultsDoc, ParseError> {
    let root = refrint_engine::json::parse(text)?;

    let suite = root
        .get("suite")
        .and_then(Value::as_str)
        .ok_or_else(|| ParseError::Schema("missing \"suite\"".to_owned()))?;
    if suite != "sim_throughput" {
        return Err(ParseError::Schema(format!("unknown suite \"{suite}\"")));
    }
    let mode = root
        .get("mode")
        .and_then(Value::as_str)
        .ok_or_else(|| ParseError::Schema("missing \"mode\"".to_owned()))?
        .to_owned();
    let metrics = match root.get("metrics") {
        Some(Value::Arr(items)) => items,
        _ => return Err(ParseError::Schema("missing \"metrics\" array".to_owned())),
    };
    let mut out = Vec::with_capacity(metrics.len());
    for (i, item) in metrics.iter().enumerate() {
        let field = |key: &str| {
            item.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| ParseError::Schema(format!("metric {i}: missing \"{key}\"")))
        };
        let name = item
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ParseError::Schema(format!("metric {i}: missing \"name\"")))?
            .to_owned();
        out.push(Measurement {
            name,
            refs: field("refs")? as u64,
            refs_per_sec: field("refs_per_sec")?,
            execution_cycles: field("execution_cycles")? as u64,
        });
    }
    Ok(ResultsDoc { mode, metrics: out })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> ResultsDoc {
        ResultsDoc {
            mode: "quick".to_owned(),
            metrics: vec![
                Measurement {
                    name: "lu".to_owned(),
                    refs: 32_000,
                    refs_per_sec: 123_456.5,
                    execution_cycles: 987_654,
                },
                Measurement {
                    name: "fft".to_owned(),
                    refs: 32_000,
                    refs_per_sec: 98_765.5,
                    execution_cycles: 123,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let d = doc();
        let text = render(&d);
        let back = parse(&text).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn malformed_json_reports_offset() {
        let err = parse("{\"suite\": ").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }), "{err}");
        let err = parse("{}extra").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn wrong_schema_is_a_schema_error() {
        assert!(matches!(parse("{}"), Err(ParseError::Schema(_))));
        let err = parse("{\"suite\": \"other\", \"mode\": \"quick\", \"metrics\": []}");
        assert!(matches!(err, Err(ParseError::Schema(_))));
        let err = parse(
            "{\"suite\": \"sim_throughput\", \"mode\": \"quick\", \
             \"metrics\": [{\"name\": \"lu\"}]}",
        );
        assert!(err.unwrap_err().to_string().contains("refs"));
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let text = "{\"suite\": \"sim_throughput\", \"mode\": \"a\\\"b\\u0041\", \
                    \"metrics\": [{\"name\": \"x\", \"refs\": 1e3, \
                    \"refs_per_sec\": -2.5, \"execution_cycles\": 7}]}";
        let d = parse(text).unwrap();
        assert_eq!(d.mode, "a\"bA");
        assert_eq!(d.metrics[0].refs, 1000);
        assert_eq!(d.metrics[0].refs_per_sec, -2.5);
    }
}
