//! The `sim_throughput` suite: end-to-end simulator throughput in
//! references per second.
//!
//! Refrint's headline results come from sweeping many (policy × retention ×
//! workload) points, so refs/sec directly bounds how much of the design
//! space we can explore. This module defines a fixed set of scenarios
//! (synthetic presets across the paper's three application classes, an SRAM
//! baseline, the Periodic-All burst path, and a trace replay) and measures
//! each one with wall-clock timing. Results carry two kinds of signal:
//!
//! * `refs_per_sec` — machine-dependent throughput, gated with a tolerance;
//! * `execution_cycles` — the simulated clock, which is deterministic and
//!   must match a recorded baseline *exactly* on any machine.
//!
//! The `perfgate` binary records these results to `BENCH_SIM.json` and
//! fails CI when a metric regresses.

use std::time::Instant;

use refrint::simulation::{ObsConfig, Simulation, SimulationBuilder};
use refrint_workloads::apps::AppPreset;

/// How a scenario drives the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Driver {
    /// Generate the preset's synthetic reference streams on the fly.
    Synthetic,
    /// Capture the preset to a binary trace once, then replay it.
    Replay,
}

/// Which chip configuration a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chip {
    /// SRAM baseline (no refresh machinery at all).
    Sram,
    /// eDRAM with the paper's recommended Refrint WB(32,32) policy.
    EdramRecommended,
    /// eDRAM with the Periodic-All baseline (exercises the burst path).
    EdramPeriodicAll,
}

/// One named throughput scenario.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable metric name, used as the key in `BENCH_SIM.json`.
    pub name: &'static str,
    app: AppPreset,
    chip: Chip,
    driver: Driver,
}

/// The fixed scenario list. Order is stable; names are the JSON keys.
#[must_use]
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "lu",
            app: AppPreset::Lu,
            chip: Chip::EdramRecommended,
            driver: Driver::Synthetic,
        },
        Scenario {
            name: "lu_sram",
            app: AppPreset::Lu,
            chip: Chip::Sram,
            driver: Driver::Synthetic,
        },
        Scenario {
            name: "lu_periodic_all",
            app: AppPreset::Lu,
            chip: Chip::EdramPeriodicAll,
            driver: Driver::Synthetic,
        },
        Scenario {
            name: "fft",
            app: AppPreset::Fft,
            chip: Chip::EdramRecommended,
            driver: Driver::Synthetic,
        },
        Scenario {
            name: "blackscholes",
            app: AppPreset::Blackscholes,
            chip: Chip::EdramRecommended,
            driver: Driver::Synthetic,
        },
        Scenario {
            name: "lu_replay",
            app: AppPreset::Lu,
            chip: Chip::EdramRecommended,
            driver: Driver::Replay,
        },
    ]
}

/// Measurement effort: `Quick` for CI smoke runs, `Full` for baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small runs, few repetitions — seconds, for CI.
    Quick,
    /// Larger runs, more repetitions — for recording baselines.
    Full,
}

impl Effort {
    /// References per thread for each simulated run.
    #[must_use]
    pub fn refs_per_thread(self) -> u64 {
        match self {
            Effort::Quick => 2_000,
            Effort::Full => 8_000,
        }
    }

    /// Timed repetitions per scenario (the median is reported).
    #[must_use]
    pub fn repetitions(self) -> usize {
        match self {
            Effort::Quick => 3,
            Effort::Full => 7,
        }
    }

    /// The mode string stored in the results document.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Effort::Quick => "quick",
            Effort::Full => "full",
        }
    }

    /// Parses a mode string (`quick` / `full`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Effort::Quick),
            "full" => Some(Effort::Full),
            _ => None,
        }
    }
}

/// The measured result of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Scenario name (JSON key).
    pub name: String,
    /// Data references processed per simulated run.
    pub refs: u64,
    /// Median wall-clock references per second across repetitions.
    pub refs_per_sec: f64,
    /// Simulated execution cycles — deterministic, must match exactly.
    pub execution_cycles: u64,
}

/// The observability setting the `REFRINT_OBS` environment variable asks
/// for: unset/`off` disables the recorder, `default` samples every 64th
/// event, `full` samples everything. The CI `obs-smoke` job uses this to
/// measure instrumentation overhead with the very same `perfgate` flow —
/// `execution_cycles` must match the baseline exactly (recording never
/// perturbs), and refs/sec must stay within the gate's tolerance.
fn obs_from_env() -> Option<ObsConfig> {
    match std::env::var("REFRINT_OBS").as_deref() {
        Ok("default") => Some(ObsConfig::default()),
        Ok("full") => Some(ObsConfig::full()),
        Ok("off") | Ok("") | Err(_) => None,
        Ok(other) => panic!("REFRINT_OBS must be off/default/full, not `{other}`"),
    }
}

fn builder_for(s: &Scenario, effort: Effort) -> SimulationBuilder {
    let mut b = Simulation::builder()
        .cores(16)
        .seed(7)
        .refs_per_thread(effort.refs_per_thread());
    if let Some(obs) = obs_from_env() {
        b = b.observability(obs);
    }
    match s.chip {
        Chip::Sram => b.sram_baseline(),
        Chip::EdramRecommended => b.edram_recommended(),
        Chip::EdramPeriodicAll => b.edram_baseline(),
    }
}

/// Runs one scenario once and returns `(refs, execution_cycles, seconds)`.
///
/// Building the system is excluded from the timed region; for replay
/// scenarios the trace is read from `trace_path`, which must already exist.
fn run_once(s: &Scenario, effort: Effort, trace_path: Option<&std::path::Path>) -> (u64, u64, f64) {
    match s.driver {
        Driver::Synthetic => {
            let mut sim = builder_for(s, effort)
                .build()
                .expect("throughput scenarios are valid configurations");
            let start = Instant::now();
            let outcome = sim.run(s.app);
            let secs = start.elapsed().as_secs_f64();
            (
                outcome.report.counts.dl1_accesses,
                outcome.report.execution_cycles,
                secs,
            )
        }
        Driver::Replay => {
            let path = trace_path.expect("replay scenarios need a captured trace");
            let mut sim = builder_for(s, effort)
                .trace(path)
                .build()
                .expect("throughput scenarios are valid configurations");
            let start = Instant::now();
            let outcome = sim.replay().expect("captured trace replays cleanly");
            let secs = start.elapsed().as_secs_f64();
            (
                outcome.report.counts.dl1_accesses,
                outcome.report.execution_cycles,
                secs,
            )
        }
    }
}

/// Measures one scenario: one warm-up run, then `effort.repetitions()` timed
/// runs; reports the median refs/sec (robust against scheduler noise).
#[must_use]
pub fn measure(s: &Scenario, effort: Effort) -> Measurement {
    // Replay scenarios capture their trace once, outside the timed region.
    let tmp;
    let trace_path = if s.driver == Driver::Replay {
        tmp = std::env::temp_dir().join(format!(
            "refrint-throughput-{}-{}-{}.rft",
            s.name,
            effort.label(),
            std::process::id()
        ));
        let capture_sim = builder_for(s, effort)
            .build()
            .expect("throughput scenarios are valid configurations");
        capture_sim
            .capture(s.app, &tmp)
            .expect("trace capture to the temp dir succeeds");
        Some(tmp.as_path())
    } else {
        None
    };

    let (refs, cycles, _) = run_once(s, effort, trace_path); // warm-up
    let mut rates: Vec<f64> = Vec::with_capacity(effort.repetitions());
    for _ in 0..effort.repetitions() {
        let (r, c, secs) = run_once(s, effort, trace_path);
        assert_eq!(r, refs, "scenario {} is not deterministic (refs)", s.name);
        assert_eq!(
            c, cycles,
            "scenario {} is not deterministic (cycles)",
            s.name
        );
        rates.push(r as f64 / secs.max(1e-9));
    }
    rates.sort_by(f64::total_cmp);
    let median = rates[rates.len() / 2];

    if let Some(p) = trace_path {
        let _ = std::fs::remove_file(p);
    }
    Measurement {
        name: s.name.to_owned(),
        refs,
        refs_per_sec: median,
        execution_cycles: cycles,
    }
}

/// Runs the whole suite, printing progress to stderr.
#[must_use]
pub fn run_suite(effort: Effort) -> Vec<Measurement> {
    scenarios()
        .iter()
        .map(|s| {
            eprintln!(
                "sim_throughput: measuring {} ({})...",
                s.name,
                effort.label()
            );
            let m = measure(s, effort);
            eprintln!(
                "sim_throughput: {:<16} {:>12.0} refs/sec ({} refs, {} cycles)",
                m.name, m.refs_per_sec, m.refs, m.execution_cycles
            );
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_unique_and_include_lu() {
        let names: Vec<&str> = scenarios().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        assert!(names.contains(&"lu"), "the gated lu scenario must exist");
    }

    #[test]
    fn effort_modes_round_trip() {
        for e in [Effort::Quick, Effort::Full] {
            assert_eq!(Effort::parse(e.label()), Some(e));
        }
        assert_eq!(Effort::parse("bogus"), None);
        assert!(Effort::Quick.refs_per_thread() < Effort::Full.refs_per_thread());
    }

    #[test]
    fn measuring_a_tiny_synthetic_scenario_is_deterministic() {
        let s = Scenario {
            name: "tiny",
            app: AppPreset::Lu,
            chip: Chip::EdramRecommended,
            driver: Driver::Synthetic,
        };
        // Two independent measurements must agree on the simulated clock.
        let a = measure(&s, Effort::Quick);
        let b = measure(&s, Effort::Quick);
        assert_eq!(a.execution_cycles, b.execution_cycles);
        assert_eq!(a.refs, b.refs);
        assert!(a.refs_per_sec > 0.0);
    }
}
