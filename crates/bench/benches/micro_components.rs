//! Component microbenchmarks: the hot paths of the substrates the system
//! simulator is built from (cache lookups, directory transactions, torus
//! routing, the lazy decay-schedule algebra, workload generation).

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_coherence::directory::Directory;
use refrint_coherence::protocol::{CoreRequest, DirectoryProtocol};
use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
use refrint_edram::schedule::{DecaySchedule, LineKind};
use refrint_engine::time::Cycle;
use refrint_mem::addr::LineAddr;
use refrint_mem::cache::Cache;
use refrint_mem::config::CacheGeometry;
use refrint_mem::line::MesiState;
use refrint_noc::routing::hop_count;
use refrint_noc::topology::{NodeId, Torus};
use refrint_workloads::apps::AppPreset;
use refrint_workloads::generator::ThreadStream;

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group.sample_size(20);

    group.bench_function("cache_lookup_hit", |b| {
        let geom = CacheGeometry::new(256 * 1024, 8, 64).unwrap();
        let mut cache = Cache::new("bench", geom);
        for i in 0..4096u64 {
            cache.fill(LineAddr::new(i), MesiState::Exclusive, Cycle::ZERO);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            std::hint::black_box(cache.lookup(LineAddr::new(i), Cycle::new(i)));
        });
    });

    group.bench_function("directory_read_write_mix", |b| {
        let mut dir = Directory::new(16);
        let mut proto = DirectoryProtocol::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = LineAddr::new(i % 512);
            let tile = (i % 16) as usize;
            let req = if i.is_multiple_of(3) {
                CoreRequest::Write
            } else {
                CoreRequest::Read
            };
            std::hint::black_box(proto.access(&mut dir, line, tile, req));
        });
    });

    group.bench_function("torus_hop_count", |b| {
        let torus = Torus::paper_4x4();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(hop_count(
                &torus,
                NodeId::new(i % 16),
                NodeId::new((i * 7) % 16),
            ));
        });
    });

    group.bench_function("decay_schedule_settle", |b| {
        let schedule = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(32, 32)),
            Cycle::new(50_000),
            Cycle::new(16_384),
            Cycle::ZERO,
        );
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(schedule.settle(
                LineKind::Dirty,
                Cycle::new(i % 100_000),
                Cycle::new(i % 100_000 + 5_000_000),
            ));
        });
    });

    group.bench_function("workload_generation_10k_refs", |b| {
        let model = AppPreset::Lu.model().with_refs_per_thread(10_000);
        b.iter(|| {
            let stream = ThreadStream::new(&model, 0, 42);
            std::hint::black_box(stream.count());
        });
    });

    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
