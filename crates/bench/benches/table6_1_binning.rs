//! Regenerates Table 6.1 (application binning into Class 1/2/3) and measures
//! the cost of the classification pass.

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_workloads::apps::AppPreset;
use refrint_workloads::classify::{classify, ClassifierConfig};

fn table6_1(c: &mut Criterion) {
    // Use the library's default sample size (20k references per thread): the
    // classification thresholds are calibrated for it; much smaller samples
    // over-weight cold-start misses and inflate the visibility metric.
    let config = ClassifierConfig::default();

    // Print the table once so the bench run leaves the artefact in its log.
    println!("== Table 6.1: application binning ==");
    for app in AppPreset::ALL {
        let report = classify(&app.model(), &config);
        println!("{report}");
        assert_eq!(
            report.class,
            app.paper_class(),
            "{app} must match the paper's bin"
        );
    }

    let mut group = c.benchmark_group("table6_1");
    group.sample_size(10);
    group.bench_function("classify_all_apps", |b| {
        b.iter(|| {
            for app in AppPreset::ALL {
                std::hint::black_box(classify(&app.model(), &config));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, table6_1);
criterion_main!(benches);
