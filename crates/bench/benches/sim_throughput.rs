//! End-to-end simulator throughput (refs/sec) across the scenarios gated by
//! `perfgate`. Set `SIM_THROUGHPUT_MODE=full` for baseline-quality numbers;
//! the default quick mode is sized for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_bench::throughput::{measure, scenarios, Effort};

fn sim_throughput(c: &mut Criterion) {
    let effort = std::env::var("SIM_THROUGHPUT_MODE")
        .ok()
        .and_then(|m| Effort::parse(&m))
        .unwrap_or(Effort::Quick);
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(2);
    for scenario in scenarios() {
        // Each "iteration" reports the suite's own refs/sec measurement so
        // the bench output and BENCH_SIM.json agree on methodology.
        group.bench_function(scenario.name, |b| {
            b.iter(|| {
                let m = measure(&scenario, effort);
                println!(
                    "    {}: {:.0} refs/sec ({} cycles)",
                    m.name, m.refs_per_sec, m.execution_cycles
                );
                m.execution_cycles
            });
        });
    }
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
