//! Regenerates Figure 6.2 (dynamic/leakage/refresh/DRAM energy per class,
//! normalised to full-SRAM memory energy) on a smoke-scale sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_bench::{experiment, render_figure_6_2, representative_apps, sweep, Scale};

fn fig6_2(c: &mut Criterion) {
    let cfg = experiment(Scale::Smoke, Some(representative_apps()));
    let results = sweep(&cfg);
    println!("== Figure 6.2 (smoke scale, representative apps) ==");
    for (label, group) in render_figure_6_2(&results) {
        println!("-- {label} --");
        for series in group {
            print!("{series}");
        }
    }

    let mut group = c.benchmark_group("fig6_2");
    group.sample_size(10);
    group.bench_function("render_all_classes", |b| {
        b.iter(|| std::hint::black_box(render_figure_6_2(&results)));
    });
    group.finish();
}

criterion_group!(benches, fig6_2);
criterion_main!(benches);
