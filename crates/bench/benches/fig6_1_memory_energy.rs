//! Regenerates Figure 6.1 (L1/L2/L3/DRAM energy, normalised to full-SRAM
//! memory energy) on a smoke-scale sweep and benchmarks the end-to-end
//! pipeline (sweep + rendering) for one representative application per class.

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_bench::{experiment, render_figure_6_1, representative_apps, sweep, Scale};

fn fig6_1(c: &mut Criterion) {
    let cfg = experiment(Scale::Smoke, Some(representative_apps()));
    let results = sweep(&cfg);
    println!("== Figure 6.1 (smoke scale, representative apps) ==");
    for series in render_figure_6_1(&results) {
        print!("{series}");
    }

    let mut group = c.benchmark_group("fig6_1");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| std::hint::black_box(render_figure_6_1(&results)));
    });
    // A deliberately tiny sweep (one app, one retention, three policies) so
    // the end-to-end pipeline cost can be measured without dominating the
    // benchmark suite's runtime.
    let tiny = refrint::experiment::ExperimentConfig {
        apps: vec![refrint_workloads::apps::AppPreset::Lu],
        retentions_us: vec![50],
        policies: vec![
            refrint_edram::policy::RefreshPolicy::edram_baseline(),
            refrint_edram::policy::RefreshPolicy::recommended(),
        ],
        refs_per_thread: 1_500,
        seed: 0xBEEF,
        cores: 16,
        ..refrint::experiment::ExperimentConfig::default()
    };
    group.bench_function("sweep_tiny_end_to_end", |b| {
        b.iter(|| std::hint::black_box(sweep(&tiny)));
    });
    group.finish();
}

criterion_group!(benches, fig6_1);
criterion_main!(benches);
