//! Regenerates Figure 6.4 (execution time, normalised to the full-SRAM
//! execution time) on a smoke-scale sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_bench::{experiment, render_figure_6_4, representative_apps, sweep, Scale};

fn fig6_4(c: &mut Criterion) {
    let cfg = experiment(Scale::Smoke, Some(representative_apps()));
    let results = sweep(&cfg);
    println!("== Figure 6.4 (smoke scale, representative apps) ==");
    for (label, group) in render_figure_6_4(&results) {
        println!("-- {label} --");
        for series in group {
            print!("{series}");
        }
    }

    let mut group = c.benchmark_group("fig6_4");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| std::hint::black_box(render_figure_6_4(&results)));
    });
    group.finish();
}

criterion_group!(benches, fig6_4);
criterion_main!(benches);
