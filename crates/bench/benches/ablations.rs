//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * A1 — sentry-margin sensitivity: how much refresh energy the
//!   conservative "all sentry bits fire together" margin costs relative to
//!   tighter margins (Section 4.1 discusses this trade-off).
//! * A3 — periodic group size: how the burst blocking fraction changes with
//!   the number of refresh groups per cache (Section 3.2's availability
//!   argument for staggering).

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_edram::controller::PeriodicBurstModel;
use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
use refrint_edram::schedule::{DecaySchedule, LineKind};
use refrint_engine::time::Cycle;

fn ablation_sentry_margin(c: &mut Criterion) {
    let retention = Cycle::new(50_000);
    println!(
        "== Ablation A1: sentry margin vs refreshes for an idle clean line (WB(32,32), 5 ms) =="
    );
    for margin_lines in [1u64, 1024, 4096, 16 * 1024, 32 * 1024] {
        let schedule = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(32, 32)),
            retention,
            Cycle::new(margin_lines.min(49_999)),
            Cycle::ZERO,
        );
        let s = schedule.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(5_000_000));
        println!(
            "margin {:>6} cycles -> {} refreshes, invalidated at {:?}",
            margin_lines.min(49_999),
            s.refreshes,
            s.invalidated_at
        );
    }

    let mut group = c.benchmark_group("ablation_sentry_margin");
    group.sample_size(10);
    group.bench_function("settle_with_paper_margin", |b| {
        let schedule = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(32, 32)),
            retention,
            Cycle::new(16 * 1024),
            Cycle::ZERO,
        );
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(schedule.settle(
                LineKind::Dirty,
                Cycle::new(i),
                Cycle::new(i + 2_000_000),
            ));
        });
    });
    group.finish();
}

fn ablation_group_size(c: &mut Criterion) {
    let retention = Cycle::new(50_000);
    println!("== Ablation A3: periodic refresh groups vs blocked fraction and worst-case stall (16K-line bank) ==");
    for groups in [1u64, 2, 4, 8, 16, 64] {
        let lines_per_group = 16 * 1024 / groups;
        let model = PeriodicBurstModel::new(retention, groups, lines_per_group);
        println!(
            "groups {:>3} -> blocked fraction {:.4}, worst-case stall {} cycles",
            groups,
            model.blocked_fraction(),
            model.burst_length()
        );
    }

    let mut group = c.benchmark_group("ablation_group_size");
    group.sample_size(10);
    group.bench_function("access_delay_paper_grouping", |b| {
        let model = PeriodicBurstModel::new(retention, 4, 4096);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(model.access_delay(Cycle::new(i % 50_000)));
        });
    });
    group.finish();
}

criterion_group!(benches, ablation_sentry_margin, ablation_group_size);
criterion_main!(benches);
