//! Trace subsystem benchmarks: the streaming hot paths of `refrint-trace`
//! (varint-delta encode on capture, decode on replay) measured on an
//! in-memory trace so disk latency does not pollute the numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_trace::{capture_model, TraceFile, TraceMeta, TraceWriter};
use refrint_workloads::apps::AppPreset;

fn trace_io(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_io");
    group.sample_size(10);

    let model = AppPreset::Lu
        .model()
        .with_threads(4)
        .with_refs_per_thread(20_000);
    let meta = TraceMeta::new(&model.name, model.threads, 7);

    group.bench_function("encode_80k_refs", |b| {
        b.iter(|| {
            let mut w = TraceWriter::new(std::io::sink(), &meta).unwrap();
            std::hint::black_box(capture_model(&model, 7, &mut w).unwrap());
        });
    });

    let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
    let records = capture_model(&model, 7, &mut w).unwrap();
    let bytes = w.into_inner().unwrap();
    println!(
        "note: {} records encode to {} bytes ({:.2} B/record)",
        records,
        bytes.len(),
        bytes.len() as f64 / records as f64
    );
    let trace = TraceFile::from_bytes(bytes).unwrap();

    group.bench_function("decode_80k_refs", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for t in 0..trace.meta().threads {
                for r in trace.thread(t).unwrap() {
                    std::hint::black_box(r.unwrap());
                    n += 1;
                }
            }
            assert_eq!(n, records);
        });
    });

    group.finish();
}

criterion_group!(benches, trace_io);
criterion_main!(benches);
