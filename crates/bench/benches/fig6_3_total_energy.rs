//! Regenerates Figure 6.3 (total system energy, normalised to the full-SRAM
//! system energy) on a smoke-scale sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use refrint_bench::{experiment, headline, render_figure_6_3, representative_apps, sweep, Scale};

fn fig6_3(c: &mut Criterion) {
    let cfg = experiment(Scale::Smoke, Some(representative_apps()));
    let results = sweep(&cfg);
    println!("== Figure 6.3 (smoke scale, representative apps) ==");
    for (label, group) in render_figure_6_3(&results) {
        println!("-- {label} --");
        for series in group {
            print!("{series}");
        }
    }
    if let Some(h) = headline(&results) {
        println!(
            "headline @50us: P.all system {:.2}, R.WB(32,32) system {:.2}",
            h.baseline_system_energy, h.refrint_system_energy
        );
    }

    let mut group = c.benchmark_group("fig6_3");
    group.sample_size(10);
    group.bench_function("render", |b| {
        b.iter(|| std::hint::black_box(render_figure_6_3(&results)));
    });
    group.finish();
}

criterion_group!(benches, fig6_3);
criterion_main!(benches);
