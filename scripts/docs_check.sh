#!/usr/bin/env bash
# docs-check: keep the documentation honest.
#
#   1. Every relative markdown link in README.md and docs/*.md points at a
#      file that exists.
#   2. Every `refrint-cli <subcommand>` the docs mention is a real
#      subcommand (it appears in `refrint-cli help`).
#   3. Every serve endpoint documented in docs/serve.md is routed in
#      crates/serve/src/lib.rs, and vice versa.
#   4. Every `--flag` in the docs/serve.md flag table appears in the CLI
#      usage text.
#
# Usage: scripts/docs_check.sh [path/to/refrint-cli]
# (defaults to target/release/refrint-cli; build it first)

set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${1:-target/release/refrint-cli}"
if [ ! -x "$CLI" ]; then
    echo "docs-check: $CLI not found — run 'cargo build --release -p refrint-cli' first" >&2
    exit 1
fi

fail=0
err() {
    echo "docs-check: FAIL: $*" >&2
    fail=1
}

docs=(README.md docs/*.md)

# --- 1. relative markdown links resolve -------------------------------------
for doc in "${docs[@]}"; do
    dir=$(dirname "$doc")
    # ](target) occurrences; external and pure-anchor links are skipped,
    # in-page anchors on relative links are stripped before the existence test.
    while IFS= read -r link; do
        case "$link" in
        http://* | https://* | mailto:*) continue ;;
        '#'*) continue ;;
        esac
        target="$dir/${link%%#*}"
        [ -e "$target" ] || err "$doc links to missing file: $link"
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//')
done

# --- 2. documented CLI subcommands exist ------------------------------------
help_output=$("$CLI" help)
known_commands=$(printf '%s\n' "$help_output" |
    awk '/^Commands:/{found=1; next} found && /^  [a-z]/ {print $1}' | sort -u)
[ -n "$known_commands" ] || err "could not parse the Commands section of '$CLI help'"

documented_commands=$(grep -ohE 'refrint-cli [a-z][a-z-]*' "${docs[@]}" |
    awk '{print $2}' | grep -v '^help$' | sort -u)
for cmd in $documented_commands; do
    printf '%s\n' "$known_commands" | grep -qx "$cmd" ||
        err "docs mention 'refrint-cli $cmd' but '$CLI help' lists no such subcommand"
done

# Coverage in the other direction: every real subcommand is documented.
for cmd in $known_commands; do
    printf '%s\n' "$documented_commands" | grep -qx "$cmd" ||
        err "subcommand '$cmd' exists but no doc mentions 'refrint-cli $cmd'"
done

# --- 3. documented serve endpoints are routed -------------------------------
routes=crates/serve/src/lib.rs
documented_endpoints=$(grep -ohE '(GET|POST) /[a-z]+' docs/serve.md docs/coordinator.md |
    awk '{print $2}' | sort -u)
[ -n "$documented_endpoints" ] || err "no endpoints found in docs/serve.md"
for ep in $documented_endpoints; do
    grep -qF "\"$ep" "$routes" ||
        err "docs document endpoint $ep but $routes does not route it"
done

# ...and every routed path is documented (the /jobs/ prefix is matched
# dynamically in route(), so it is checked as a prefix).
routed_paths=$({
    grep -oE '"/[a-z]+[/a-z]*" =>' "$routes" | grep -oE '/[a-z]+'
    grep -oE 'starts_with\("/[a-z]+' "$routes" | grep -oE '/[a-z]+'
} | sort -u)
for path in $routed_paths; do
    prefix=$(printf '%s' "$path" | grep -oE '^/[a-z]+')
    printf '%s\n' "$documented_endpoints" | grep -qx "$prefix" ||
        err "$routes routes $path but docs/serve.md does not document it"
done

# --- 4. documented serve flags exist in the usage text ----------------------
documented_flags=$(grep -oE '^\| `--[a-z-]+' docs/serve.md | grep -oE '\-\-[a-z-]+' | sort -u)
[ -n "$documented_flags" ] || err "no flag table found in docs/serve.md"
for flag in $documented_flags; do
    printf '%s\n' "$help_output" | grep -qF -- "$flag" ||
        err "docs/serve.md documents serve flag $flag but '$CLI help' does not mention it"
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "docs-check: OK (${#docs[@]} files, $(printf '%s\n' "$known_commands" | wc -l | tr -d ' ') subcommands, $(printf '%s\n' "$documented_endpoints" | wc -l | tr -d ' ') endpoints)"
