//! `refrint-suite`: workspace-level examples and integration tests for the
//! Refrint reproduction.
//!
//! This crate re-exports the workspace crates so the examples under
//! `examples/` and the integration tests under `tests/` can use the whole
//! stack through a single dependency. See the individual crates for the real
//! functionality:
//!
//! * [`refrint`] — the CMP simulator, experiment sweep and figure generators.
//! * [`refrint_edram`] — retention, sentry bits and refresh policies.
//! * [`refrint_mem`] / [`refrint_coherence`] / [`refrint_noc`] — the cache,
//!   coherence and interconnect substrates.
//! * [`refrint_energy`] — technology parameters and energy accounting.
//! * [`refrint_workloads`] — synthetic application models and classification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use refrint;
pub use refrint_coherence;
pub use refrint_edram;
pub use refrint_energy;
pub use refrint_engine;
pub use refrint_mem;
pub use refrint_noc;
pub use refrint_workloads;

/// The version of the reproduction suite.
#[must_use]
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::version().is_empty());
    }
}
