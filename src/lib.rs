//! `refrint-suite`: workspace-level examples and integration tests for the
//! Refrint reproduction.
//!
//! This crate re-exports the workspace crates so the examples under
//! `examples/` and the integration tests under `tests/` can use the whole
//! stack through a single dependency.
//!
//! # The API in one minute
//!
//! Everything starts at [`refrint::simulation::Simulation::builder`]:
//!
//! ```
//! use refrint_suite::refrint::prelude::*;
//!
//! let mut simulation = Simulation::builder()
//!     .edram_recommended()          // preset: Refrint WB(32,32) at 50 us
//!     .cores(2)                     // shrink the chip for this doctest
//!     .refs_per_thread(1_000)       // scale the workload
//!     .build()                      // typed BuildError on misconfiguration
//!     .unwrap();
//! let outcome = simulation.run(AppPreset::Lu);
//! assert!(outcome.execution_cycles() > 0);
//! ```
//!
//! Sweeps shard across worker threads with a deterministic merge:
//!
//! ```no_run
//! use refrint_suite::refrint::experiment::ExperimentConfig;
//! use refrint_suite::refrint::sweep::SweepRunner;
//!
//! let results = SweepRunner::new(ExperimentConfig::quick())
//!     .workers(8)
//!     .observer(|p: &refrint_suite::refrint::sweep::SweepProgress| {
//!         eprintln!("[{}/{}] {}", p.completed, p.total, p.config_label);
//!     })
//!     .run()
//!     .unwrap();
//! assert!(!results.sram.is_empty());
//! ```
//!
//! Custom refresh policies implement
//! [`refrint_edram::model::RefreshPolicyModel`] and ride through both the
//! builder and the sweep runner — see `examples/custom_policy.rs`.
//!
//! See the individual crates for the real functionality:
//!
//! * [`refrint`] — the CMP simulator, `Simulation` builder, parallel sweep
//!   runner and figure generators.
//! * [`refrint_edram`] — retention, sentry bits and pluggable refresh
//!   policies.
//! * [`refrint_mem`] / [`refrint_coherence`] / [`refrint_noc`] — the cache,
//!   coherence and interconnect substrates.
//! * [`refrint_energy`] — technology parameters and energy accounting.
//! * [`refrint_workloads`] — synthetic application models and classification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use refrint;
pub use refrint_coherence;
pub use refrint_edram;
pub use refrint_energy;
pub use refrint_engine;
pub use refrint_mem;
pub use refrint_noc;
pub use refrint_workloads;

/// The version of the reproduction suite.
#[must_use]
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::version().is_empty());
    }
}
